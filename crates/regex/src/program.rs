//! Compiled program representation executed by the Pike VM.

use crate::classes::ClassSet;
use std::fmt;

/// One VM instruction. Program counters are indices into
/// [`Program::insts`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Inst {
    /// Match one exact byte and advance.
    Byte(u8),
    /// Match one byte inside the indexed class and advance.
    Class(u32),
    /// Match any byte and advance.
    Any,
    /// Match any byte except `\n` and advance.
    AnyNoNewline,
    /// Fork execution; the first target has higher priority.
    Split(u32, u32),
    /// Unconditional jump.
    Jmp(u32),
    /// Assert the current position is the start of the haystack.
    StartText,
    /// Assert the current position is the end of the haystack.
    EndText,
    /// Assert a word/non-word boundary at the current position.
    WordBoundary,
    /// Assert the absence of a word boundary.
    NotWordBoundary,
    /// Report a match ending at the current position.
    Match,
    /// Report a match of one pattern of a fused multi-pattern program
    /// (see `crate::nfa`). Single-pattern programs never contain it;
    /// the VM treats it exactly like [`Inst::Match`].
    MatchId(u32),
}

/// A compiled pattern: an instruction list plus a table of character
/// classes referenced by [`Inst::Class`].
#[derive(Debug, Clone, Default)]
pub struct Program {
    /// The instruction stream; execution starts at index 0.
    pub insts: Vec<Inst>,
    /// Character classes referenced by index.
    pub classes: Vec<ClassSet>,
    /// True when no instruction can match the empty haystack prefix
    /// anchored anywhere (i.e. pattern can match the empty string).
    pub matches_empty: bool,
    /// Precomputed root-closure dispatch: for each possible first
    /// byte, the successor pcs of the root closure's consuming
    /// instructions, in priority order. `None` when the root closure
    /// is position-dependent (anchors/boundaries) or can match empty.
    pub root_plan: Option<RootPlan>,
    /// Precompiled epsilon closures: for every pc, the consuming and
    /// match instructions reachable through epsilon transitions, in
    /// priority order, each tagged with the assertions crossed on the
    /// way. The VM's thread-spawn path iterates this flat list instead
    /// of re-walking splits/jumps with an explicit stack on every
    /// byte. Computed by [`Program::compute_closures`].
    pub closures: ClosureTable,
}

/// Assertion-requirement bits on a [`ClosureStep`]: every bit in a
/// step's mask must also be present in the position's context bits
/// for the step to fire. A position's context has exactly one of
/// `REQ_WORD_BOUNDARY`/`REQ_NOT_WORD_BOUNDARY` set, so a step that
/// accumulated both (a contradictory epsilon path) can never fire —
/// exactly like the walk it replaces.
pub const REQ_START: u8 = 1;
/// See [`REQ_START`].
pub const REQ_END: u8 = 2;
/// See [`REQ_START`].
pub const REQ_WORD_BOUNDARY: u8 = 4;
/// See [`REQ_START`].
pub const REQ_NOT_WORD_BOUNDARY: u8 = 8;

/// One precompiled epsilon-closure step; see [`Program::closures`].
#[derive(Debug, Clone, Copy)]
pub struct ClosureStep {
    /// The consuming (or match) instruction reached.
    pub target: u32,
    /// Conjunction of [`REQ_START`]-family bits crossed en route.
    pub mask: u8,
}

/// Flat per-pc epsilon-closure lists; see [`Program::closures`].
#[derive(Debug, Clone, Default)]
pub struct ClosureTable {
    steps: Vec<ClosureStep>,
    /// `spans[pc]..spans[pc + 1]` indexes `steps`; `insts.len() + 1`
    /// entries.
    spans: Vec<u32>,
    /// True when some step carries a non-empty mask. Assertion-free
    /// programs (most IDS signature fragments) let the VM skip
    /// computing position context entirely: every mask test passes
    /// for any context.
    has_assertions: bool,
}

impl ClosureTable {
    /// The closure steps of `pc`, in thread-priority order.
    #[inline]
    pub fn steps_of(&self, pc: u32) -> &[ClosureStep] {
        &self.steps[self.spans[pc as usize] as usize..self.spans[pc as usize + 1] as usize]
    }

    /// True when any step's firing depends on position context.
    #[inline]
    pub fn has_assertions(&self) -> bool {
        self.has_assertions
    }
}

/// Byte-indexed dispatch table for starting new match attempts.
///
/// For unanchored search the VM conceptually adds a fresh root thread
/// at every haystack position; since the root epsilon-closure of a
/// non-anchored, non-nullable pattern is position-independent, the
/// set of threads that survive consuming byte `b` can be precomputed
/// once. Huge alternations (IDS keyword-inventory rules with hundreds
/// of branches) then cost only as many thread spawns per position as
/// actually accept the current byte.
#[derive(Debug, Clone)]
pub struct RootPlan {
    /// `by_byte[b]` = successor pcs (pc after the consuming
    /// instruction) for root threads that accept byte `b`, in
    /// priority order.
    pub by_byte: Vec<Vec<u32>>,
}

impl Program {
    /// Computes the root plan; call once after the instruction stream
    /// is final. Leaves `root_plan` as `None` when the root closure
    /// contains anchors, boundaries, or a `Match` (empty-capable).
    pub fn compute_root_plan(&mut self) {
        self.root_plan = None;
        if self.insts.is_empty() {
            return;
        }
        // Epsilon closure from pc 0 in priority (preorder) order.
        let mut seen = vec![false; self.insts.len()];
        let mut stack = vec![0u32];
        let mut consuming: Vec<u32> = Vec::new();
        while let Some(pc) = stack.pop() {
            if seen[pc as usize] {
                continue;
            }
            seen[pc as usize] = true;
            match &self.insts[pc as usize] {
                Inst::Jmp(t) => stack.push(*t),
                Inst::Split(a, b) => {
                    stack.push(*b);
                    stack.push(*a);
                }
                // Position-dependent or empty-capable roots cannot be
                // precomputed.
                Inst::StartText
                | Inst::EndText
                | Inst::WordBoundary
                | Inst::NotWordBoundary
                | Inst::Match
                | Inst::MatchId(_) => return,
                _ => consuming.push(pc),
            }
        }
        let mut by_byte: Vec<Vec<u32>> = vec![Vec::new(); 256];
        for &pc in &consuming {
            match &self.insts[pc as usize] {
                Inst::Byte(b) => by_byte[*b as usize].push(pc + 1),
                Inst::Class(idx) => {
                    for r in self.classes[*idx as usize].ranges() {
                        for b in r.lo..=r.hi {
                            by_byte[b as usize].push(pc + 1);
                        }
                    }
                }
                Inst::Any => {
                    for bucket in by_byte.iter_mut() {
                        bucket.push(pc + 1);
                    }
                }
                Inst::AnyNoNewline => {
                    for (b, bucket) in by_byte.iter_mut().enumerate() {
                        if b != b'\n' as usize {
                            bucket.push(pc + 1);
                        }
                    }
                }
                _ => unreachable!("non-consuming inst in consuming list"),
            }
        }
        self.root_plan = Some(RootPlan { by_byte });
    }

    /// Precompiles the epsilon closure of every pc; call once after
    /// the instruction stream is final.
    ///
    /// Each closure is the preorder walk [`crate::vm`] used to do per
    /// spawn — splits/jumps flattened away, assertions folded into a
    /// per-step requirement mask. Paths are deduplicated on
    /// `(pc, mask)`: the same pc explored under two different masks
    /// yields steps for both (at runtime the first step whose mask is
    /// satisfied wins; the VM's per-step `seen` marks suppress the
    /// rest), which reproduces the walk's behavior exactly — a
    /// stacked walk only re-explores a pc when the assertions leading
    /// to it differ, and mask accumulation is monotone, so epsilon
    /// cycles terminate.
    pub fn compute_closures(&mut self) {
        let n = self.insts.len();
        let mut steps: Vec<ClosureStep> = Vec::new();
        let mut spans: Vec<u32> = Vec::with_capacity(n + 1);
        spans.push(0);
        // (pc, mask) visit marks, generation-stamped per source pc so
        // the buffer is not re-zeroed n times.
        let mut seen = vec![0u32; n * 16];
        let mut stack: Vec<(u32, u8)> = Vec::new();
        for pc in 0..n as u32 {
            let generation = pc + 1;
            stack.clear();
            stack.push((pc, 0));
            while let Some((p, mask)) = stack.pop() {
                let slot = p as usize * 16 + mask as usize;
                if seen[slot] == generation {
                    continue;
                }
                seen[slot] = generation;
                match &self.insts[p as usize] {
                    Inst::Jmp(t) => stack.push((*t, mask)),
                    Inst::Split(a, b) => {
                        // Low-priority arm first, so the preferred arm
                        // is walked (and listed) first.
                        stack.push((*b, mask));
                        stack.push((*a, mask));
                    }
                    Inst::StartText => stack.push((p + 1, mask | REQ_START)),
                    Inst::EndText => stack.push((p + 1, mask | REQ_END)),
                    Inst::WordBoundary => stack.push((p + 1, mask | REQ_WORD_BOUNDARY)),
                    Inst::NotWordBoundary => stack.push((p + 1, mask | REQ_NOT_WORD_BOUNDARY)),
                    _ => steps.push(ClosureStep { target: p, mask }),
                }
            }
            spans.push(steps.len() as u32);
        }
        let has_assertions = steps.iter().any(|s| s.mask != 0);
        self.closures = ClosureTable {
            steps,
            spans,
            has_assertions,
        };
    }
}

impl Program {
    /// Number of instructions.
    pub fn len(&self) -> usize {
        self.insts.len()
    }

    /// True for the trivial empty program.
    pub fn is_empty(&self) -> bool {
        self.insts.is_empty()
    }

    /// Registers a class, reusing an identical existing entry.
    pub fn intern_class(&mut self, set: ClassSet) -> u32 {
        if let Some(i) = self.classes.iter().position(|c| *c == set) {
            return i as u32;
        }
        self.classes.push(set);
        (self.classes.len() - 1) as u32
    }
}

impl fmt::Display for Program {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (i, inst) in self.insts.iter().enumerate() {
            match inst {
                Inst::Byte(b) => writeln!(f, "{i:04} byte  {:?}", *b as char)?,
                Inst::Class(c) => writeln!(f, "{i:04} class #{c}")?,
                Inst::Any => writeln!(f, "{i:04} any")?,
                Inst::AnyNoNewline => writeln!(f, "{i:04} any-no-nl")?,
                Inst::Split(a, b) => writeln!(f, "{i:04} split {a}, {b}")?,
                Inst::Jmp(t) => writeln!(f, "{i:04} jmp   {t}")?,
                Inst::StartText => writeln!(f, "{i:04} ^")?,
                Inst::EndText => writeln!(f, "{i:04} $")?,
                Inst::WordBoundary => writeln!(f, "{i:04} \\b")?,
                Inst::NotWordBoundary => writeln!(f, "{i:04} \\B")?,
                Inst::Match => writeln!(f, "{i:04} match")?,
                Inst::MatchId(p) => writeln!(f, "{i:04} match #{p}")?,
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn class_interning_dedupes() {
        let mut p = Program::default();
        let a = p.intern_class(ClassSet::single(b'a'));
        let b = p.intern_class(ClassSet::single(b'b'));
        let a2 = p.intern_class(ClassSet::single(b'a'));
        assert_eq!(a, a2);
        assert_ne!(a, b);
        assert_eq!(p.classes.len(), 2);
    }

    #[test]
    fn display_is_line_per_inst() {
        let mut p = Program::default();
        p.insts.push(Inst::Byte(b'x'));
        p.insts.push(Inst::Match);
        let text = p.to_string();
        assert_eq!(text.lines().count(), 2);
    }
}
