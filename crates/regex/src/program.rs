//! Compiled program representation executed by the Pike VM.

use crate::classes::ClassSet;
use std::fmt;

/// One VM instruction. Program counters are indices into
/// [`Program::insts`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Inst {
    /// Match one exact byte and advance.
    Byte(u8),
    /// Match one byte inside the indexed class and advance.
    Class(u32),
    /// Match any byte and advance.
    Any,
    /// Match any byte except `\n` and advance.
    AnyNoNewline,
    /// Fork execution; the first target has higher priority.
    Split(u32, u32),
    /// Unconditional jump.
    Jmp(u32),
    /// Assert the current position is the start of the haystack.
    StartText,
    /// Assert the current position is the end of the haystack.
    EndText,
    /// Assert a word/non-word boundary at the current position.
    WordBoundary,
    /// Assert the absence of a word boundary.
    NotWordBoundary,
    /// Report a match ending at the current position.
    Match,
    /// Report a match of one pattern of a fused multi-pattern program
    /// (see `crate::nfa`). Single-pattern programs never contain it;
    /// the VM treats it exactly like [`Inst::Match`].
    MatchId(u32),
}

/// A compiled pattern: an instruction list plus a table of character
/// classes referenced by [`Inst::Class`].
#[derive(Debug, Clone, Default)]
pub struct Program {
    /// The instruction stream; execution starts at index 0.
    pub insts: Vec<Inst>,
    /// Character classes referenced by index.
    pub classes: Vec<ClassSet>,
    /// True when no instruction can match the empty haystack prefix
    /// anchored anywhere (i.e. pattern can match the empty string).
    pub matches_empty: bool,
    /// Precomputed root-closure dispatch: for each possible first
    /// byte, the successor pcs of the root closure's consuming
    /// instructions, in priority order. `None` when the root closure
    /// is position-dependent (anchors/boundaries) or can match empty.
    pub root_plan: Option<RootPlan>,
}

/// Byte-indexed dispatch table for starting new match attempts.
///
/// For unanchored search the VM conceptually adds a fresh root thread
/// at every haystack position; since the root epsilon-closure of a
/// non-anchored, non-nullable pattern is position-independent, the
/// set of threads that survive consuming byte `b` can be precomputed
/// once. Huge alternations (IDS keyword-inventory rules with hundreds
/// of branches) then cost only as many thread spawns per position as
/// actually accept the current byte.
#[derive(Debug, Clone)]
pub struct RootPlan {
    /// `by_byte[b]` = successor pcs (pc after the consuming
    /// instruction) for root threads that accept byte `b`, in
    /// priority order.
    pub by_byte: Vec<Vec<u32>>,
}

impl Program {
    /// Computes the root plan; call once after the instruction stream
    /// is final. Leaves `root_plan` as `None` when the root closure
    /// contains anchors, boundaries, or a `Match` (empty-capable).
    pub fn compute_root_plan(&mut self) {
        self.root_plan = None;
        if self.insts.is_empty() {
            return;
        }
        // Epsilon closure from pc 0 in priority (preorder) order.
        let mut seen = vec![false; self.insts.len()];
        let mut stack = vec![0u32];
        let mut consuming: Vec<u32> = Vec::new();
        while let Some(pc) = stack.pop() {
            if seen[pc as usize] {
                continue;
            }
            seen[pc as usize] = true;
            match &self.insts[pc as usize] {
                Inst::Jmp(t) => stack.push(*t),
                Inst::Split(a, b) => {
                    stack.push(*b);
                    stack.push(*a);
                }
                // Position-dependent or empty-capable roots cannot be
                // precomputed.
                Inst::StartText
                | Inst::EndText
                | Inst::WordBoundary
                | Inst::NotWordBoundary
                | Inst::Match
                | Inst::MatchId(_) => return,
                _ => consuming.push(pc),
            }
        }
        let mut by_byte: Vec<Vec<u32>> = vec![Vec::new(); 256];
        for &pc in &consuming {
            match &self.insts[pc as usize] {
                Inst::Byte(b) => by_byte[*b as usize].push(pc + 1),
                Inst::Class(idx) => {
                    for r in self.classes[*idx as usize].ranges() {
                        for b in r.lo..=r.hi {
                            by_byte[b as usize].push(pc + 1);
                        }
                    }
                }
                Inst::Any => {
                    for bucket in by_byte.iter_mut() {
                        bucket.push(pc + 1);
                    }
                }
                Inst::AnyNoNewline => {
                    for (b, bucket) in by_byte.iter_mut().enumerate() {
                        if b != b'\n' as usize {
                            bucket.push(pc + 1);
                        }
                    }
                }
                _ => unreachable!("non-consuming inst in consuming list"),
            }
        }
        self.root_plan = Some(RootPlan { by_byte });
    }
}

impl Program {
    /// Number of instructions.
    pub fn len(&self) -> usize {
        self.insts.len()
    }

    /// True for the trivial empty program.
    pub fn is_empty(&self) -> bool {
        self.insts.is_empty()
    }

    /// Registers a class, reusing an identical existing entry.
    pub fn intern_class(&mut self, set: ClassSet) -> u32 {
        if let Some(i) = self.classes.iter().position(|c| *c == set) {
            return i as u32;
        }
        self.classes.push(set);
        (self.classes.len() - 1) as u32
    }
}

impl fmt::Display for Program {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (i, inst) in self.insts.iter().enumerate() {
            match inst {
                Inst::Byte(b) => writeln!(f, "{i:04} byte  {:?}", *b as char)?,
                Inst::Class(c) => writeln!(f, "{i:04} class #{c}")?,
                Inst::Any => writeln!(f, "{i:04} any")?,
                Inst::AnyNoNewline => writeln!(f, "{i:04} any-no-nl")?,
                Inst::Split(a, b) => writeln!(f, "{i:04} split {a}, {b}")?,
                Inst::Jmp(t) => writeln!(f, "{i:04} jmp   {t}")?,
                Inst::StartText => writeln!(f, "{i:04} ^")?,
                Inst::EndText => writeln!(f, "{i:04} $")?,
                Inst::WordBoundary => writeln!(f, "{i:04} \\b")?,
                Inst::NotWordBoundary => writeln!(f, "{i:04} \\B")?,
                Inst::Match => writeln!(f, "{i:04} match")?,
                Inst::MatchId(p) => writeln!(f, "{i:04} match #{p}")?,
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn class_interning_dedupes() {
        let mut p = Program::default();
        let a = p.intern_class(ClassSet::single(b'a'));
        let b = p.intern_class(ClassSet::single(b'b'));
        let a2 = p.intern_class(ClassSet::single(b'a'));
        assert_eq!(a, a2);
        assert_ne!(a, b);
        assert_eq!(p.classes.len(), 2);
    }

    #[test]
    fn display_is_line_per_inst() {
        let mut p = Program::default();
        p.insts.push(Inst::Byte(b'x'));
        p.insts.push(Inst::Match);
        let text = p.to_string();
        assert_eq!(text.lines().count(), 2);
    }
}
