//! Compiles an [`Ast`] into a [`Program`].
//!
//! Counted repetitions are expanded, so `{m,n}` costs `n` copies of
//! its body; a configurable size limit rejects patterns that would
//! expand into unreasonably large programs.

use crate::ast::Ast;
use crate::error::{Error, ErrorKind};
use crate::program::{Inst, Program};

/// Hard ceiling applied on top of the user-provided size limit.
pub const DEFAULT_SIZE_LIMIT: usize = 100_000;

/// Compiles `ast`, failing when the estimated instruction count
/// exceeds `size_limit`.
pub fn compile(ast: &Ast, size_limit: usize) -> Result<Program, Error> {
    let mut prog = Program::default();
    compile_onto(ast, &mut prog, size_limit)?;
    let mut c = Compiler { prog, size_limit };
    c.push(Inst::Match)?;
    c.prog.matches_empty = ast.is_nullable();
    c.prog.compute_root_plan();
    c.prog.compute_closures();
    Ok(c.prog)
}

/// Appends the compiled form of `ast` to `prog`, returning the entry
/// pc. No terminating match instruction is emitted — the caller picks
/// [`Inst::Match`] or [`Inst::MatchId`] — and `size_limit` bounds the
/// *total* instruction count of the shared program, so a fused
/// multi-pattern arena (see `crate::nfa`) can grow one pattern at a
/// time under a single budget. On error the program may hold a
/// partial compilation; callers roll back by truncating `insts` (and
/// `classes`) to their pre-call lengths.
pub(crate) fn compile_onto(ast: &Ast, prog: &mut Program, size_limit: usize) -> Result<u32, Error> {
    let estimated = ast.weight().saturating_add(prog.insts.len());
    if estimated > size_limit {
        return Err(Error::new(
            ErrorKind::ProgramTooBig {
                estimated,
                limit: size_limit,
            },
            0,
        ));
    }
    let entry = prog.insts.len() as u32;
    let mut c = Compiler {
        prog: std::mem::take(prog),
        size_limit,
    };
    let result = c.emit(ast);
    *prog = c.prog;
    result.map(|()| entry)
}

struct Compiler {
    prog: Program,
    size_limit: usize,
}

impl Compiler {
    fn pc(&self) -> u32 {
        self.prog.insts.len() as u32
    }

    fn push(&mut self, inst: Inst) -> Result<u32, Error> {
        if self.prog.insts.len() >= self.size_limit {
            return Err(Error::new(
                ErrorKind::ProgramTooBig {
                    estimated: self.prog.insts.len() + 1,
                    limit: self.size_limit,
                },
                0,
            ));
        }
        self.prog.insts.push(inst);
        Ok(self.pc() - 1)
    }

    fn patch_split(&mut self, at: u32, first: u32, second: u32) {
        self.prog.insts[at as usize] = Inst::Split(first, second);
    }

    fn patch_jmp(&mut self, at: u32, to: u32) {
        self.prog.insts[at as usize] = Inst::Jmp(to);
    }

    fn emit(&mut self, ast: &Ast) -> Result<(), Error> {
        match ast {
            Ast::Empty => Ok(()),
            Ast::Literal(b) => {
                self.push(Inst::Byte(*b))?;
                Ok(())
            }
            Ast::Class(set) => {
                // Single-byte classes compile to a plain byte test.
                if let Some(b) = set.as_single_byte() {
                    self.push(Inst::Byte(b))?;
                } else {
                    let idx = self.prog.intern_class(set.clone());
                    self.push(Inst::Class(idx))?;
                }
                Ok(())
            }
            Ast::Dot { matches_newline } => {
                self.push(if *matches_newline {
                    Inst::Any
                } else {
                    Inst::AnyNoNewline
                })?;
                Ok(())
            }
            Ast::StartText => {
                self.push(Inst::StartText)?;
                Ok(())
            }
            Ast::EndText => {
                self.push(Inst::EndText)?;
                Ok(())
            }
            Ast::WordBoundary => {
                self.push(Inst::WordBoundary)?;
                Ok(())
            }
            Ast::NotWordBoundary => {
                self.push(Inst::NotWordBoundary)?;
                Ok(())
            }
            Ast::Group(inner) => self.emit(inner),
            Ast::Concat(parts) => {
                for part in parts {
                    self.emit(part)?;
                }
                Ok(())
            }
            Ast::Alternate(branches) => self.emit_alternate(branches),
            Ast::Repeat {
                ast,
                min,
                max,
                greedy,
            } => self.emit_repeat(ast, *min, *max, *greedy),
        }
    }

    fn emit_alternate(&mut self, branches: &[Ast]) -> Result<(), Error> {
        // For branches b1 | b2 | ... | bn:
        //   split L1, S2; L1: b1; jmp END; S2: split L2, S3; ...
        let mut jumps_to_end = Vec::new();
        let mut pending_split: Option<u32> = None;
        for (i, branch) in branches.iter().enumerate() {
            let is_last = i + 1 == branches.len();
            if let Some(split_at) = pending_split.take() {
                let here = self.pc();
                // The second arm of the previous split starts here.
                if let Inst::Split(first, _) = self.prog.insts[split_at as usize] {
                    self.patch_split(split_at, first, here);
                }
            }
            if !is_last {
                let split_at = self.push(Inst::Split(0, 0))?;
                let branch_start = self.pc();
                self.patch_split(split_at, branch_start, 0);
                self.emit(branch)?;
                let jmp_at = self.push(Inst::Jmp(0))?;
                jumps_to_end.push(jmp_at);
                pending_split = Some(split_at);
            } else {
                self.emit(branch)?;
            }
        }
        let end = self.pc();
        for j in jumps_to_end {
            self.patch_jmp(j, end);
        }
        Ok(())
    }

    fn emit_repeat(
        &mut self,
        ast: &Ast,
        min: u32,
        max: Option<u32>,
        greedy: bool,
    ) -> Result<(), Error> {
        // Mandatory prefix: `min` copies in sequence.
        for _ in 0..min {
            self.emit(ast)?;
        }
        match max {
            None => {
                // Unbounded tail: a star loop.
                // L: split BODY, END (greedy) / split END, BODY (lazy)
                // BODY: ast; jmp L
                // END:
                let loop_at = self.push(Inst::Split(0, 0))?;
                let body = self.pc();
                self.emit(ast)?;
                self.push(Inst::Jmp(loop_at))?;
                let end = self.pc();
                if greedy {
                    self.patch_split(loop_at, body, end);
                } else {
                    self.patch_split(loop_at, end, body);
                }
            }
            Some(max) => {
                // Bounded tail: (max - min) optional copies, nested so
                // that bailing out of copy k skips copies k+1..
                let mut splits = Vec::new();
                for _ in min..max {
                    let split_at = self.push(Inst::Split(0, 0))?;
                    let body = self.pc();
                    self.emit(ast)?;
                    splits.push((split_at, body));
                }
                let end = self.pc();
                for (split_at, body) in splits {
                    if greedy {
                        self.patch_split(split_at, body, end);
                    } else {
                        self.patch_split(split_at, end, body);
                    }
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::{parse, Flags};

    fn compiled(pat: &str) -> Program {
        let ast = parse(pat, Flags::default()).expect("parse");
        compile(&ast, DEFAULT_SIZE_LIMIT).expect("compile")
    }

    #[test]
    fn literal_program_shape() {
        let p = compiled("ab");
        assert_eq!(
            p.insts,
            vec![Inst::Byte(b'a'), Inst::Byte(b'b'), Inst::Match]
        );
    }

    #[test]
    fn star_is_a_loop() {
        let p = compiled("a*");
        assert!(matches!(p.insts[0], Inst::Split(1, 3)));
        assert!(matches!(p.insts[2], Inst::Jmp(0)));
        assert!(p.matches_empty);
    }

    #[test]
    fn lazy_star_swaps_priority() {
        let p = compiled("a*?");
        assert!(matches!(p.insts[0], Inst::Split(3, 1)));
    }

    #[test]
    fn counted_repetition_expands() {
        let p = compiled("a{3}");
        assert_eq!(
            p.insts,
            vec![
                Inst::Byte(b'a'),
                Inst::Byte(b'a'),
                Inst::Byte(b'a'),
                Inst::Match
            ]
        );
    }

    #[test]
    fn size_limit_enforced() {
        let ast = parse("a{1000}", Flags::default()).expect("parse");
        assert!(compile(&ast, 100).is_err());
    }

    #[test]
    fn single_byte_class_becomes_byte() {
        let p = compiled("[a]");
        assert_eq!(p.insts[0], Inst::Byte(b'a'));
        assert!(p.classes.is_empty());
    }

    #[test]
    fn alternation_split_targets_are_valid() {
        let p = compiled("ab|cd|ef");
        for inst in &p.insts {
            match inst {
                Inst::Split(a, b) => {
                    assert!((*a as usize) < p.len() && (*b as usize) < p.len());
                }
                Inst::Jmp(t) => assert!((*t as usize) < p.len()),
                _ => {}
            }
        }
    }
}
