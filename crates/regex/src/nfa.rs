//! A multi-pattern NFA sharing one instruction arena.
//!
//! [`FusedSetBuilder`] Thompson-compiles every fusable pattern of a
//! library into a single [`Program`] (the arena — instructions and
//! interned character classes are shared across patterns), each
//! pattern ending in an [`Inst::MatchId`] carrying its caller-chosen
//! pattern id. The result, a [`FusedSet`], is executed by the lazy
//! DFA in `crate::lazydfa`: one left-to-right pass over a haystack
//! reports *exactly* the set of patterns with at least one match —
//! not a superset like the literal prefilter, the true match set.
//!
//! Not every pattern goes in. Patterns whose counted repetitions
//! would expand into large programs (and with them large DFA state
//! sets) are refused with [`FuseOutcome::Fallback`] so the caller
//! keeps them on the per-pattern Pike VM; the contract is that the
//! fused scan plus the fallback list together cover the library.

use crate::ast::Ast;
use crate::compiler;
use crate::error::Error;
use crate::parser::{self, Flags};
use crate::program::{Inst, Program};
use crate::vm::is_word_byte;
use std::sync::atomic::{AtomicU64, Ordering};

/// Per-pattern ceiling on the expanded AST weight; above it the
/// compiled form (and the DFA state sets it induces) is too large to
/// fuse profitably.
const FUSE_WEIGHT_LIMIT: usize = 512;

/// Counted repetitions beyond this bound stay on the VM: `a{40}`
/// expands into 40 copies whose positional progress the DFA would
/// have to track as distinct states.
const FUSE_REP_LIMIT: u32 = 16;

/// Total instruction budget for the shared arena.
const FUSE_PROGRAM_LIMIT: usize = 1 << 20;

/// Default bound on cached DFA states (see `crate::lazydfa`).
const DEFAULT_STATE_LIMIT: usize = 4096;

/// Whether [`FusedSetBuilder::add`] accepted a pattern into the fused
/// NFA or refused it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FuseOutcome {
    /// The pattern is part of the fused automaton.
    Fused,
    /// The pattern must stay on the per-pattern VM; the payload is a
    /// human-readable reason.
    Fallback(&'static str),
}

/// The internal multi-pattern NFA: the shared program arena plus the
/// per-pattern entry points and the byte equivalence classes the DFA
/// scans over.
#[derive(Debug, Clone)]
pub(crate) struct MultiNfa {
    /// Shared instruction arena; every pattern ends in
    /// [`Inst::MatchId`].
    pub(crate) prog: Program,
    /// Entry pc of each fused pattern (the DFA re-seeds all of them
    /// at every haystack position for unanchored search).
    pub(crate) entries: Vec<u32>,
    /// Byte → equivalence class, refined so that two bytes in one
    /// class are indistinguishable to every instruction *and* to the
    /// word-boundary predicate.
    pub(crate) classes: ByteClasses,
}

/// Byte equivalence classes over the whole arena.
#[derive(Debug, Clone)]
pub(crate) struct ByteClasses {
    /// Byte value → class index.
    pub(crate) map: [u8; 256],
    /// Number of classes (≤ 256).
    pub(crate) count: u16,
}

impl ByteClasses {
    /// Computes the coarsest partition of byte values that every
    /// instruction of `prog` (and `\b`'s word/non-word split) cannot
    /// tell apart. The DFA transition table is indexed by class, so a
    /// smaller partition means proportionally less cache memory.
    fn from_program(prog: &Program) -> ByteClasses {
        // `boundary[b]` marks the start of a new run at byte b.
        let mut boundary = [false; 257];
        boundary[0] = true;
        let mut split = |lo: u8, hi: u8| {
            boundary[lo as usize] = true;
            boundary[hi as usize + 1] = true;
        };
        // Word-ness participates in closure decisions (`\b`, `\B`).
        for (lo, hi) in [(b'0', b'9'), (b'A', b'Z'), (b'_', b'_'), (b'a', b'z')] {
            split(lo, hi);
        }
        for inst in &prog.insts {
            match inst {
                Inst::Byte(b) => split(*b, *b),
                Inst::AnyNoNewline => split(b'\n', b'\n'),
                _ => {}
            }
        }
        for class in &prog.classes {
            for r in class.ranges() {
                split(r.lo, r.hi);
            }
        }
        let mut map = [0u8; 256];
        let mut current = 0usize;
        for b in 0..256 {
            if b > 0 && boundary[b] {
                current += 1;
            }
            map[b] = current as u8;
        }
        ByteClasses {
            map,
            count: (current + 1) as u16,
        }
    }
}

/// Accumulates patterns into the fused NFA. See the module docs.
#[derive(Debug)]
pub struct FusedSetBuilder {
    prog: Program,
    entries: Vec<u32>,
    pattern_count: usize,
    state_limit: usize,
    accelerate: bool,
}

impl Default for FusedSetBuilder {
    fn default() -> FusedSetBuilder {
        FusedSetBuilder::new()
    }
}

impl FusedSetBuilder {
    /// An empty builder with the default DFA state budget.
    pub fn new() -> FusedSetBuilder {
        FusedSetBuilder {
            prog: Program::default(),
            entries: Vec::new(),
            pattern_count: 0,
            state_limit: DEFAULT_STATE_LIMIT,
            accelerate: true,
        }
    }

    /// Caps the number of lazily-determinized DFA states a cache may
    /// hold before it is flushed (memory bound under adversarial
    /// inputs). Clamped to at least 8 so mid-scan flushes can always
    /// retain the in-flight state.
    pub fn state_limit(mut self, limit: usize) -> FusedSetBuilder {
        self.state_limit = limit.max(8);
        self
    }

    /// Enables or disables accelerated quiescent-state skipping in the
    /// lazy DFA (on by default). Turning it off forces the plain
    /// per-byte transition loop — useful for A/B benchmarking and for
    /// the differential tests that prove acceleration is observation-
    /// ally invisible.
    pub fn accelerate(mut self, yes: bool) -> FusedSetBuilder {
        self.accelerate = yes;
        self
    }

    /// Tries to fuse `pattern` under id `pid` (ids must be unique per
    /// builder; the feature library uses feature indices). Returns
    /// [`FuseOutcome::Fallback`] — leaving the builder unchanged —
    /// when the pattern is valid but unfusable, and `Err` only when
    /// the pattern does not parse at all.
    pub fn add(
        &mut self,
        pid: u32,
        pattern: &str,
        case_insensitive: bool,
    ) -> Result<FuseOutcome, Error> {
        let flags = Flags {
            case_insensitive,
            dot_matches_newline: false,
        };
        let ast = parser::parse(pattern, flags)?;
        if let Some(reason) = fallback_reason(&ast) {
            return Ok(FuseOutcome::Fallback(reason));
        }
        let insts_mark = self.prog.insts.len();
        let classes_mark = self.prog.classes.len();
        match compiler::compile_onto(&ast, &mut self.prog, FUSE_PROGRAM_LIMIT) {
            Ok(entry) => {
                self.prog.insts.push(Inst::MatchId(pid));
                self.entries.push(entry);
                self.pattern_count += 1;
                Ok(FuseOutcome::Fused)
            }
            Err(_) => {
                // Roll back the partial compilation; classes interned
                // before this pattern are untouched (truncation only
                // drops ones referenced by the dropped instructions).
                self.prog.insts.truncate(insts_mark);
                self.prog.classes.truncate(classes_mark);
                Ok(FuseOutcome::Fallback("shared arena budget exhausted"))
            }
        }
    }

    /// Number of patterns fused so far.
    pub fn len(&self) -> usize {
        self.pattern_count
    }

    /// True when nothing has been fused.
    pub fn is_empty(&self) -> bool {
        self.pattern_count == 0
    }

    /// Finalizes the NFA; `None` when no pattern was fused.
    pub fn build(self) -> Option<FusedSet> {
        if self.entries.is_empty() {
            return None;
        }
        // Distinct token per built automaton: a `DfaCache` notices
        // when it is handed a different set (hot reload) and resets
        // instead of serving stale states.
        static TOKEN: AtomicU64 = AtomicU64::new(1);
        let classes = ByteClasses::from_program(&self.prog);
        Some(FusedSet {
            nfa: MultiNfa {
                prog: self.prog,
                entries: self.entries,
                classes,
            },
            pattern_count: self.pattern_count,
            state_limit: self.state_limit,
            accelerate: self.accelerate,
            token: TOKEN.fetch_add(1, Ordering::Relaxed),
        })
    }
}

/// Decides fusability from the parsed AST; `Some(reason)` routes the
/// pattern to the VM fallback list.
fn fallback_reason(ast: &Ast) -> Option<&'static str> {
    if ast.weight() > FUSE_WEIGHT_LIMIT {
        return Some("expanded program too large to fuse");
    }
    if has_large_counted_rep(ast) {
        return Some("bounded repetition count beyond fuse limit");
    }
    None
}

/// True when any counted repetition exceeds [`FUSE_REP_LIMIT`].
fn has_large_counted_rep(ast: &Ast) -> bool {
    match ast {
        Ast::Repeat { ast, min, max, .. } => {
            *min > FUSE_REP_LIMIT
                || max.is_some_and(|m| m > FUSE_REP_LIMIT)
                || has_large_counted_rep(ast)
        }
        Ast::Concat(parts) | Ast::Alternate(parts) => parts.iter().any(has_large_counted_rep),
        Ast::Group(inner) => has_large_counted_rep(inner),
        _ => false,
    }
}

/// A compiled fused multi-pattern set: the shared NFA plus the lazy
/// DFA configuration. Scanning lives in `crate::lazydfa` and needs a
/// caller-provided [`crate::DfaCache`].
#[derive(Debug, Clone)]
pub struct FusedSet {
    pub(crate) nfa: MultiNfa,
    pattern_count: usize,
    pub(crate) state_limit: usize,
    pub(crate) accelerate: bool,
    pub(crate) token: u64,
}

impl FusedSet {
    /// Number of fused patterns.
    pub fn pattern_count(&self) -> usize {
        self.pattern_count
    }

    /// Instructions in the shared arena (a size proxy).
    pub fn program_len(&self) -> usize {
        self.nfa.prog.len()
    }

    /// Byte equivalence classes the DFA scans over.
    pub fn byte_class_count(&self) -> usize {
        self.nfa.classes.count as usize
    }

    /// The DFA state-cache bound in force.
    pub fn state_limit(&self) -> usize {
        self.state_limit
    }

    /// Whether quiescent-state acceleration is enabled.
    pub fn acceleration_enabled(&self) -> bool {
        self.accelerate
    }
}

/// Word-ness of a byte, re-exported for the DFA's context bits.
pub(crate) fn word_byte(b: u8) -> bool {
    is_word_byte(b)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_fuses_ids_patterns() {
        let mut b = FusedSetBuilder::new();
        for (i, pat) in [r"union\s+select", r"\bor\b", r"[0-9]+", "^admin", "--$"]
            .iter()
            .enumerate()
        {
            assert_eq!(b.add(i as u32, pat, true).unwrap(), FuseOutcome::Fused);
        }
        let set = b.build().expect("non-empty");
        assert_eq!(set.pattern_count(), 5);
        assert!(set.program_len() > 5);
        assert!(set.byte_class_count() >= 4);
        assert!(set.byte_class_count() <= 256);
    }

    #[test]
    fn large_counted_repetition_falls_back() {
        let mut b = FusedSetBuilder::new();
        assert!(matches!(
            b.add(0, "a{200}", false).unwrap(),
            FuseOutcome::Fallback(_)
        ));
        assert!(matches!(
            b.add(1, "(abcdefgh){100}", false).unwrap(),
            FuseOutcome::Fallback(_)
        ));
        // Small counted reps fuse fine.
        assert_eq!(b.add(2, "a{2,4}", false).unwrap(), FuseOutcome::Fused);
        assert!(b.build().is_some());
    }

    #[test]
    fn invalid_pattern_is_an_error_not_a_fallback() {
        let mut b = FusedSetBuilder::new();
        assert!(b.add(0, "(unclosed", false).is_err());
    }

    #[test]
    fn empty_builder_builds_none() {
        assert!(FusedSetBuilder::new().build().is_none());
    }

    #[test]
    fn byte_classes_split_word_and_literal_bytes() {
        let mut b = FusedSetBuilder::new();
        b.add(0, "select", true).unwrap();
        let set = b.build().unwrap();
        let c = &set.nfa.classes;
        // 's' and 'e' are distinct literal bytes → distinct classes.
        assert_ne!(c.map[b's' as usize], c.map[b'e' as usize]);
        // Case folding put both cases in the pattern's classes.
        assert_eq!(
            c.map[b'S' as usize] != c.map[b'0' as usize],
            true,
            "letters and digits must not share a class (word-ness aside, 'S' is a pattern byte)"
        );
        // Two never-referenced non-word bytes share a class.
        assert_eq!(c.map[0x01], c.map[0x02]);
        // Word vs non-word bytes never share a class.
        assert_ne!(c.map[b'9' as usize], c.map[b'!' as usize]);
    }

    #[test]
    fn tokens_are_distinct_per_build() {
        let build = || {
            let mut b = FusedSetBuilder::new();
            b.add(0, "x", false).unwrap();
            b.build().unwrap()
        };
        assert_ne!(build().token, build().token);
    }

    #[test]
    fn state_limit_is_clamped() {
        let b = FusedSetBuilder::new().state_limit(1);
        assert_eq!(b.state_limit, 8);
    }
}
