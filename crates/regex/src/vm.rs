//! A prioritized Pike VM.
//!
//! The VM simulates the NFA breadth-first over the haystack while
//! keeping threads in priority order, yielding Perl-style
//! leftmost-first match semantics (earlier alternation branches and
//! greedy/lazy preferences are honored) in `O(haystack × program)`
//! time with no backtracking blow-up.

use crate::prefilter::PrefixSkip;
use crate::program::{Inst, Program, REQ_END, REQ_NOT_WORD_BOUNDARY, REQ_START, REQ_WORD_BOUNDARY};

/// A matched span, `start..end` byte offsets into the haystack.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Span {
    /// Start offset (inclusive).
    pub start: usize,
    /// End offset (exclusive).
    pub end: usize,
}

/// Reusable scratch space for the VM; callers that run many searches
/// over the same program should reuse one cache.
#[derive(Debug, Default)]
pub struct VmCache {
    clist: ThreadList,
    nlist: ThreadList,
}

impl VmCache {
    /// Creates an empty cache; it grows to fit the program on first use.
    pub fn new() -> VmCache {
        VmCache::default()
    }
}

#[derive(Debug, Clone, Copy)]
struct Thread {
    pc: u32,
    start: usize,
}

/// A priority-ordered thread list with O(1) duplicate detection.
#[derive(Debug, Default)]
struct ThreadList {
    dense: Vec<Thread>,
    /// `seen[pc] == generation` marks pc as already queued this step.
    seen: Vec<u32>,
    generation: u32,
}

impl ThreadList {
    fn clear(&mut self, prog_len: usize) {
        self.dense.clear();
        if self.seen.len() < prog_len {
            self.seen.resize(prog_len, 0);
        }
        self.generation = self.generation.wrapping_add(1);
        if self.generation == 0 {
            // Generation wrapped: reset marks to keep correctness.
            self.seen.iter_mut().for_each(|g| *g = 0);
            self.generation = 1;
        }
    }

    fn contains(&self, pc: u32) -> bool {
        self.seen[pc as usize] == self.generation
    }

    fn mark(&mut self, pc: u32) {
        self.seen[pc as usize] = self.generation;
    }
}

/// Runs a leftmost-first search over `hay[start..]`, returning the
/// first (leftmost) match span.
///
/// `skip`, when present, is the pattern's start-anchored literal
/// requirement: no match can begin at a position where none of its
/// prefixes occurs. With nothing in flight the scan jumps straight to
/// the next candidate position instead of seeding (and burying) a
/// root thread at every byte — the result is byte-identical because
/// skipped roots are exactly the ones that can never reach a match.
pub fn find_at(
    prog: &Program,
    skip: Option<&PrefixSkip>,
    hay: &[u8],
    start: usize,
    cache: &mut VmCache,
) -> Option<Span> {
    if prog.is_empty() || start > hay.len() {
        return None;
    }
    let plen = prog.len();
    cache.clist.clear(plen);
    cache.nlist.clear(plen);
    let mut matched: Option<Span> = None;
    let plan = prog.root_plan.as_ref();
    // Assertion-free programs never consult the context, so skip
    // computing it (two word-boundary probes per position otherwise).
    let asserts = prog.closures.has_assertions();

    let mut pos = start;
    loop {
        if matched.is_none() && cache.clist.dense.is_empty() {
            if let Some(skip) = skip {
                match skip.next_match_start(hay, pos) {
                    Some(q) => pos = q,
                    None => return None,
                }
            }
        }
        // The position's assertion context, computed once per position
        // and tested against each precompiled closure step's mask.
        let ctx = if asserts { ctx_bits(hay, pos) } else { 0 };
        // While no match is committed, a fresh root thread is added at
        // every position. Appending at the end gives earlier starts
        // higher priority, which is exactly the leftmost rule. With a
        // precomputed root plan the closure walk is skipped here and
        // fused into the step below.
        if matched.is_none() && plan.is_none() {
            add_closure(prog, &mut cache.clist, 0, pos, ctx);
        }
        // An empty list after a match is committed means nothing can
        // override it; an empty list before a match just means the
        // current root died (e.g. a failed assertion) — later start
        // positions must still be tried.
        if cache.clist.dense.is_empty() && matched.is_some() {
            break;
        }
        let byte = hay.get(pos).copied();
        // Successor threads land at `pos + 1`; their closures are
        // filtered by that position's context.
        let nctx = if asserts && byte.is_some() {
            ctx_bits(hay, pos + 1)
        } else {
            0
        };
        let mut cut = false;
        cache.nlist.clear(plen);
        for i in 0..cache.clist.dense.len() {
            if cut {
                break;
            }
            let th = cache.clist.dense[i];
            match &prog.insts[th.pc as usize] {
                Inst::Byte(b) => {
                    if byte == Some(*b) {
                        add_closure(prog, &mut cache.nlist, th.pc + 1, th.start, nctx);
                    }
                }
                Inst::Class(idx) => {
                    if let Some(b) = byte {
                        if prog.classes[*idx as usize].contains(b) {
                            add_closure(prog, &mut cache.nlist, th.pc + 1, th.start, nctx);
                        }
                    }
                }
                Inst::Any => {
                    if byte.is_some() {
                        add_closure(prog, &mut cache.nlist, th.pc + 1, th.start, nctx);
                    }
                }
                Inst::AnyNoNewline => {
                    if byte.is_some() && byte != Some(b'\n') {
                        add_closure(prog, &mut cache.nlist, th.pc + 1, th.start, nctx);
                    }
                }
                Inst::Match | Inst::MatchId(_) => {
                    // This thread matched. Lower-priority threads (later
                    // in the list) are cut; surviving higher-priority
                    // threads may still override with a better match.
                    matched = Some(Span {
                        start: th.start,
                        end: pos,
                    });
                    cut = true;
                }
                // Epsilon instructions are resolved inside add_thread
                // and never appear on a thread list.
                Inst::Split(..)
                | Inst::Jmp(..)
                | Inst::StartText
                | Inst::EndText
                | Inst::WordBoundary
                | Inst::NotWordBoundary => {
                    unreachable!("epsilon instruction on thread list")
                }
            }
        }
        // Root-plan fast path: threads that would have started at
        // `pos` and consumed `byte` enter the next list directly, at
        // the lowest priority (they have the latest start).
        if let (Some(plan), Some(b), None) = (plan, byte, matched) {
            if !cut {
                for &next_pc in &plan.by_byte[b as usize] {
                    add_closure(prog, &mut cache.nlist, next_pc, pos, nctx);
                }
            }
        }
        std::mem::swap(&mut cache.clist, &mut cache.nlist);
        if pos >= hay.len() {
            break;
        }
        pos += 1;
        // Once the haystack is exhausted of candidate threads and a
        // match is recorded, stop early.
        if cache.clist.dense.is_empty() && matched.is_some() {
            break;
        }
    }
    matched
}

/// Adds `pc`'s precompiled epsilon closure to `list`: every step whose
/// assertion mask is satisfied by `ctx`, in priority (preorder) order.
///
/// Equivalent to the explicit stack walk it replaced: the closure
/// table lists consuming/match targets in the same preorder, a step
/// whose mask needs a bit absent from `ctx` is exactly a path the walk
/// would have pruned at the failing assertion, and the `seen` marks
/// reproduce the walk's first-path-wins dedup.
#[inline]
fn add_closure(prog: &Program, list: &mut ThreadList, pc: u32, start: usize, ctx: u8) {
    for step in prog.closures.steps_of(pc) {
        if step.mask & !ctx != 0 {
            continue;
        }
        if list.contains(step.target) {
            continue;
        }
        list.mark(step.target);
        list.dense.push(Thread {
            pc: step.target,
            start,
        });
    }
}

/// The assertion context of position `pos`: which `REQ_*` requirements
/// the position satisfies. Exactly one of `REQ_WORD_BOUNDARY` /
/// `REQ_NOT_WORD_BOUNDARY` is set.
#[inline]
fn ctx_bits(hay: &[u8], pos: usize) -> u8 {
    let mut ctx = if at_word_boundary(hay, pos) {
        REQ_WORD_BOUNDARY
    } else {
        REQ_NOT_WORD_BOUNDARY
    };
    if pos == 0 {
        ctx |= REQ_START;
    }
    if pos == hay.len() {
        ctx |= REQ_END;
    }
    ctx
}

/// ASCII word byte: letter, digit or underscore. Shared with the
/// lazy DFA so both engines resolve `\b` identically.
pub(crate) fn is_word_byte(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_'
}

/// True when position `pos` sits between a word byte and a non-word
/// byte (haystack edges count as non-word).
fn at_word_boundary(hay: &[u8], pos: usize) -> bool {
    let before = pos.checked_sub(1).and_then(|i| hay.get(i).copied());
    let after = hay.get(pos).copied();
    let w1 = before.map(is_word_byte).unwrap_or(false);
    let w2 = after.map(is_word_byte).unwrap_or(false);
    w1 != w2
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compiler::{compile, DEFAULT_SIZE_LIMIT};
    use crate::parser::{parse, Flags};

    fn search(pat: &str, hay: &str) -> Option<(usize, usize)> {
        let ast = parse(pat, Flags::default()).expect("parse");
        let prog = compile(&ast, DEFAULT_SIZE_LIMIT).expect("compile");
        let mut cache = VmCache::new();
        find_at(&prog, None, hay.as_bytes(), 0, &mut cache).map(|s| (s.start, s.end))
    }

    #[test]
    fn literal_find() {
        assert_eq!(search("bc", "abcd"), Some((1, 3)));
        assert_eq!(search("xy", "abcd"), None);
    }

    #[test]
    fn leftmost_preference() {
        // Both `bb` at 2 and `b` at 1 can match; leftmost wins.
        assert_eq!(search("bb|b", "abbb"), Some((1, 3)));
    }

    #[test]
    fn alternation_first_branch_preference() {
        // Same start: the first branch wins even though shorter.
        assert_eq!(search("ab|abc", "abc"), Some((0, 2)));
        assert_eq!(search("abc|ab", "abc"), Some((0, 3)));
    }

    #[test]
    fn greedy_vs_lazy() {
        assert_eq!(search("a+", "aaa"), Some((0, 3)));
        assert_eq!(search("a+?", "aaa"), Some((0, 1)));
        assert_eq!(search("a*", "bbb"), Some((0, 0)));
    }

    #[test]
    fn anchors() {
        assert_eq!(search("^ab", "abab"), Some((0, 2)));
        assert_eq!(search("ab$", "abab"), Some((2, 4)));
        assert_eq!(search("^ab$", "abab"), None);
        assert_eq!(search("^$", ""), Some((0, 0)));
    }

    #[test]
    fn counted_reps() {
        assert_eq!(search("a{2,3}", "aaaa"), Some((0, 3)));
        assert_eq!(search("a{2,3}?", "aaaa"), Some((0, 2)));
        assert_eq!(search("a{5}", "aaaa"), None);
    }

    #[test]
    fn classes_and_dot() {
        assert_eq!(search(r"[0-9]+", "ab123cd"), Some((2, 5)));
        assert_eq!(search(r"a.c", "abc"), Some((0, 3)));
        assert_eq!(search(r"a.c", "a\nc"), None);
        assert_eq!(search(r"(?s)a.c", "a\nc"), Some((0, 3)));
    }

    #[test]
    fn word_boundaries() {
        assert_eq!(search(r"\bunion\b", "a union b"), Some((2, 7)));
        assert_eq!(search(r"\bunion\b", "reunion"), None);
        assert_eq!(search(r"\bunion\b", "unions"), None);
        assert_eq!(search(r"\bunion\b", "union"), Some((0, 5)));
        assert_eq!(search(r"\Bnion", "union"), Some((1, 5)));
        assert_eq!(search(r"\Bunion", "union"), None);
    }

    #[test]
    fn pathological_pattern_is_linear() {
        // (a|a)* a^n against a^n b — classic backtracking bomb.
        let hay = format!("{}b", "a".repeat(64));
        let pat = "(a|a)*c";
        assert_eq!(search(pat, &hay), None);
    }

    #[test]
    fn empty_pattern_matches_empty_prefix() {
        assert_eq!(search("", "abc"), Some((0, 0)));
    }

    #[test]
    fn search_from_offset() {
        let ast = parse("a", Flags::default()).expect("parse");
        let prog = compile(&ast, DEFAULT_SIZE_LIMIT).expect("compile");
        let mut cache = VmCache::new();
        let hay = b"abca";
        assert_eq!(
            find_at(&prog, None, hay, 1, &mut cache).map(|s| (s.start, s.end)),
            Some((3, 4))
        );
        assert_eq!(find_at(&prog, None, hay, 4, &mut cache), None);
    }
}
