//! Byte-range sets backing character classes.
//!
//! A [`ClassSet`] is a sorted list of disjoint, non-adjacent inclusive
//! byte ranges. All set operations keep that invariant, which lets the
//! VM test membership with a short binary search.

/// An inclusive range of bytes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub struct ByteRange {
    /// Lowest byte in the range.
    pub lo: u8,
    /// Highest byte in the range (inclusive).
    pub hi: u8,
}

impl ByteRange {
    /// Creates a range, swapping the bounds if given in reverse.
    pub fn new(lo: u8, hi: u8) -> ByteRange {
        if lo <= hi {
            ByteRange { lo, hi }
        } else {
            ByteRange { lo: hi, hi: lo }
        }
    }
}

/// A set of bytes represented as sorted disjoint ranges.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct ClassSet {
    ranges: Vec<ByteRange>,
}

impl ClassSet {
    /// The empty set.
    pub fn empty() -> ClassSet {
        ClassSet { ranges: Vec::new() }
    }

    /// A set containing a single byte.
    pub fn single(b: u8) -> ClassSet {
        let mut s = ClassSet::empty();
        s.push_range(b, b);
        s
    }

    /// Builds a set from arbitrary (possibly overlapping) ranges.
    pub fn from_ranges<I: IntoIterator<Item = (u8, u8)>>(iter: I) -> ClassSet {
        let mut s = ClassSet::empty();
        for (lo, hi) in iter {
            s.push_range(lo, hi);
        }
        s
    }

    /// Inserts `[lo, hi]`, merging with existing ranges as needed.
    pub fn push_range(&mut self, lo: u8, hi: u8) {
        let r = ByteRange::new(lo, hi);
        self.ranges.push(r);
        self.normalize();
    }

    /// Adds every byte of `other` to `self`.
    pub fn union(&mut self, other: &ClassSet) {
        self.ranges.extend_from_slice(&other.ranges);
        self.normalize();
    }

    /// Replaces the set with its complement over `0..=255`.
    pub fn negate(&mut self) {
        let mut out = Vec::new();
        let mut next = 0u16; // u16 avoids overflow past 255
        for r in &self.ranges {
            if (r.lo as u16) > next {
                out.push(ByteRange::new(next as u8, r.lo - 1));
            }
            next = r.hi as u16 + 1;
        }
        if next <= 255 {
            out.push(ByteRange::new(next as u8, 255));
        }
        self.ranges = out;
    }

    /// Adds the opposite-case counterpart of every ASCII letter in the
    /// set, implementing ASCII case folding.
    pub fn case_fold(&mut self) {
        let mut extra = Vec::new();
        for r in &self.ranges {
            // Lowercase letters overlapping the range fold to uppercase.
            let lo = r.lo.max(b'a');
            let hi = r.hi.min(b'z');
            if lo <= hi {
                extra.push(ByteRange::new(lo - 32, hi - 32));
            }
            // Uppercase letters overlapping the range fold to lowercase.
            let lo = r.lo.max(b'A');
            let hi = r.hi.min(b'Z');
            if lo <= hi {
                extra.push(ByteRange::new(lo + 32, hi + 32));
            }
        }
        self.ranges.extend(extra);
        self.normalize();
    }

    /// Membership test.
    pub fn contains(&self, b: u8) -> bool {
        self.ranges
            .binary_search_by(|r| {
                if b < r.lo {
                    std::cmp::Ordering::Greater
                } else if b > r.hi {
                    std::cmp::Ordering::Less
                } else {
                    std::cmp::Ordering::Equal
                }
            })
            .is_ok()
    }

    /// True when the set contains no bytes.
    pub fn is_empty(&self) -> bool {
        self.ranges.is_empty()
    }

    /// Number of distinct bytes in the set.
    pub fn len(&self) -> usize {
        self.ranges
            .iter()
            .map(|r| r.hi as usize - r.lo as usize + 1)
            .sum()
    }

    /// If the set holds exactly one byte, returns it.
    pub fn as_single_byte(&self) -> Option<u8> {
        if self.ranges.len() == 1 && self.ranges[0].lo == self.ranges[0].hi {
            Some(self.ranges[0].lo)
        } else {
            None
        }
    }

    /// The underlying sorted disjoint ranges.
    pub fn ranges(&self) -> &[ByteRange] {
        &self.ranges
    }

    fn normalize(&mut self) {
        if self.ranges.is_empty() {
            return;
        }
        self.ranges.sort();
        let mut out: Vec<ByteRange> = Vec::with_capacity(self.ranges.len());
        for r in self.ranges.drain(..) {
            match out.last_mut() {
                // Merge overlapping or adjacent ranges.
                Some(last) if r.lo as u16 <= last.hi as u16 + 1 => {
                    last.hi = last.hi.max(r.hi);
                }
                _ => out.push(r),
            }
        }
        self.ranges = out;
    }
}

/// `\d`
pub fn perl_digit() -> ClassSet {
    ClassSet::from_ranges([(b'0', b'9')])
}

/// `\s` — ASCII whitespace: space, tab, newline, carriage return,
/// vertical tab, form feed.
pub fn perl_space() -> ClassSet {
    ClassSet::from_ranges([(b'\t', b'\r'), (b' ', b' ')])
}

/// `\w` — word bytes: letters, digits, underscore.
pub fn perl_word() -> ClassSet {
    ClassSet::from_ranges([(b'0', b'9'), (b'A', b'Z'), (b'_', b'_'), (b'a', b'z')])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn merges_overlapping_ranges() {
        let s = ClassSet::from_ranges([(b'a', b'f'), (b'd', b'k'), (b'l', b'm')]);
        assert_eq!(s.ranges().len(), 1);
        assert!(s.contains(b'a') && s.contains(b'm'));
        assert!(!s.contains(b'n'));
    }

    #[test]
    fn negation_roundtrip() {
        let mut s = perl_digit();
        s.negate();
        assert!(!s.contains(b'5'));
        assert!(s.contains(b'a'));
        assert!(s.contains(0));
        assert!(s.contains(255));
        s.negate();
        assert_eq!(s, perl_digit());
    }

    #[test]
    fn negate_empty_is_full() {
        let mut s = ClassSet::empty();
        s.negate();
        assert_eq!(s.len(), 256);
    }

    #[test]
    fn case_folding_adds_counterparts() {
        let mut s = ClassSet::from_ranges([(b'a', b'c')]);
        s.case_fold();
        assert!(s.contains(b'A') && s.contains(b'C') && s.contains(b'b'));
        assert!(!s.contains(b'D'));
    }

    #[test]
    fn case_folding_partial_overlap() {
        // Range [Y-b] covers some upper and some lower case letters.
        let mut s = ClassSet::from_ranges([(b'Y', b'b')]);
        s.case_fold();
        for b in [b'y', b'z', b'Y', b'Z', b'a', b'b', b'A', b'B'] {
            assert!(s.contains(b), "missing {}", b as char);
        }
    }

    #[test]
    fn single_byte_detection() {
        assert_eq!(ClassSet::single(b'x').as_single_byte(), Some(b'x'));
        assert_eq!(perl_digit().as_single_byte(), None);
    }

    #[test]
    fn len_counts_bytes() {
        assert_eq!(perl_digit().len(), 10);
        assert_eq!(perl_word().len(), 63);
    }
}
