//! Mandatory-literal prefilter.
//!
//! IDS workloads run hundreds of patterns over every request, and the
//! overwhelming majority of requests match none of them. Before
//! dispatching to the VM we extract, from the AST, a small set of
//! literals such that *every* match must contain at least one of them.
//! If none of the literals occurs in the haystack (ASCII
//! case-insensitively), the VM run is skipped entirely.

use crate::ast::Ast;

/// Maximum number of alternative literals before we give up on
/// prefiltering. Large sets (IDS keyword-inventory rules can require
/// one of hundreds of function names) switch to a bucketed
/// first-byte matcher, so the ceiling is generous.
const MAX_LITERALS: usize = 400;

/// Literal-set size above which the bucketed matcher is used instead
/// of the linear scan.
const BUCKETED_THRESHOLD: usize = 8;

/// A disjunction of required literals: a haystack that contains none
/// of them cannot match the pattern.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Prefilter {
    /// Literals stored lowercased; matching is ASCII case-insensitive,
    /// which is sound for both case-sensitive and case-insensitive
    /// patterns (the prefilter is allowed false positives, never false
    /// negatives).
    literals: Vec<Vec<u8>>,
    /// For large sets: literal indices bucketed by first byte, so one
    /// pass over the haystack checks only the candidates that can
    /// start at each position (a poor man's Aho–Corasick).
    buckets: Option<Box<[Vec<u32>; 256]>>,
}

impl Prefilter {
    /// Attempts to derive a prefilter from `ast`. Returns `None` when
    /// no useful literal requirement exists (the VM must always run).
    pub fn from_ast(ast: &Ast) -> Option<Prefilter> {
        let lits = required_literals(ast)?;
        // A prefilter of very short literals (all length 1) still pays
        // off versus a VM run, so accept any non-empty requirement.
        if lits.is_empty() || lits.len() > MAX_LITERALS {
            return None;
        }
        let buckets = if lits.len() > BUCKETED_THRESHOLD {
            // Literals are lowercased, but the haystack is not:
            // bucket each literal under *both* cases of its first
            // byte so the scan loop indexes with the raw haystack
            // byte instead of case-folding every position.
            let mut b: Box<[Vec<u32>; 256]> = Box::new(std::array::from_fn(|_| Vec::new()));
            for (i, lit) in lits.iter().enumerate() {
                b[lit[0] as usize].push(i as u32);
                let up = lit[0].to_ascii_uppercase();
                if up != lit[0] {
                    b[up as usize].push(i as u32);
                }
            }
            Some(b)
        } else {
            None
        };
        Some(Prefilter {
            literals: lits,
            buckets,
        })
    }

    /// True when the haystack may match the pattern (i.e. it contains
    /// at least one required literal).
    pub fn maybe_matches(&self, hay: &[u8]) -> bool {
        match &self.buckets {
            None => self.literals.iter().any(|lit| contains_ascii_ci(hay, lit)),
            Some(buckets) => {
                for (i, &b) in hay.iter().enumerate() {
                    let rest = &hay[i..];
                    // Buckets carry both cases of each first byte, so
                    // the raw byte indexes directly (no per-byte fold).
                    for &li in buckets[b as usize].iter() {
                        let lit = &self.literals[li as usize];
                        if lit.len() <= rest.len() && rest[..lit.len()].eq_ignore_ascii_case(lit) {
                            return true;
                        }
                    }
                }
                false
            }
        }
    }

    /// The required literals (lowercased).
    pub fn literals(&self) -> &[Vec<u8>] {
        &self.literals
    }

    /// Length of the shortest required literal.
    pub fn min_literal_len(&self) -> usize {
        self.literals.iter().map(Vec::len).min().unwrap_or(0)
    }
}

/// ASCII case-insensitive substring search; `needle` must already be
/// lowercase.
///
/// The hot loop skips on the first byte (both cases precomputed once,
/// not folded per haystack byte) and confirms the second byte before
/// paying for a full comparison — the same start-byte discipline the
/// bucketed matcher uses.
fn contains_ascii_ci(hay: &[u8], needle: &[u8]) -> bool {
    if needle.is_empty() {
        return true;
    }
    if needle.len() > hay.len() {
        return false;
    }
    let first = needle[0];
    let first_up = first.to_ascii_uppercase();
    let end = hay.len() - needle.len();
    let mut i = 0;
    while i <= end {
        let Some(off) = hay[i..=end]
            .iter()
            .position(|&b| b == first || b == first_up)
        else {
            return false;
        };
        let at = i + off;
        if needle.len() == 1
            || (hay[at + 1].eq_ignore_ascii_case(&needle[1])
                && hay[at + 2..at + needle.len()].eq_ignore_ascii_case(&needle[2..]))
        {
            return true;
        }
        i = at + 1;
    }
    false
}

/// Computes the required-literal disjunction for `ast`, or `None` if
/// no requirement can be derived.
fn required_literals(ast: &Ast) -> Option<Vec<Vec<u8>>> {
    match ast {
        Ast::Empty
        | Ast::StartText
        | Ast::EndText
        | Ast::WordBoundary
        | Ast::NotWordBoundary
        | Ast::Dot { .. } => None,
        Ast::Literal(b) => Some(vec![vec![b.to_ascii_lowercase()]]),
        Ast::Class(set) => {
            // A class that is a single byte — or the case-folded pair
            // of one ASCII letter — acts as a literal byte.
            literal_byte_of_class(set).map(|b| vec![vec![b]])
        }
        Ast::Group(inner) => required_literals(inner),
        Ast::Repeat { ast, min, .. } => {
            if *min >= 1 {
                required_literals(ast)
            } else {
                None
            }
        }
        Ast::Alternate(branches) => {
            let mut all = Vec::new();
            for b in branches {
                let mut lits = required_literals(b)?;
                all.append(&mut lits);
                if all.len() > MAX_LITERALS {
                    return None;
                }
            }
            Some(all)
        }
        Ast::Concat(parts) => {
            // Best candidate: the longest contiguous literal run, or
            // any single part's own requirement — whichever has the
            // longest shortest-literal.
            let mut best: Option<Vec<Vec<u8>>> = None;
            let mut run: Vec<u8> = Vec::new();
            let consider = |cand: Vec<Vec<u8>>, best: &mut Option<Vec<Vec<u8>>>| {
                let cand_min = cand.iter().map(Vec::len).min().unwrap_or(0);
                let best_min = best
                    .as_ref()
                    .map(|b| b.iter().map(Vec::len).min().unwrap_or(0))
                    .unwrap_or(0);
                // Prefer longer literals; break ties toward fewer
                // alternatives.
                let better = cand_min > best_min
                    || (cand_min == best_min
                        && best.as_ref().map(|b| cand.len() < b.len()).unwrap_or(true));
                if better && cand_min > 0 {
                    *best = Some(cand);
                }
            };
            for part in parts {
                let lit = match part {
                    Ast::Literal(b) => Some(b.to_ascii_lowercase()),
                    Ast::Class(set) => literal_byte_of_class(set),
                    Ast::Group(inner) => match inner.as_ref() {
                        Ast::Literal(b) => Some(b.to_ascii_lowercase()),
                        _ => None,
                    },
                    _ => None,
                };
                match lit {
                    Some(b) => run.push(b),
                    None => {
                        if !run.is_empty() {
                            consider(vec![std::mem::take(&mut run)], &mut best);
                        }
                        // Non-literal parts may still carry their own
                        // requirement (e.g. a group of alternations).
                        if let Some(sub) = required_literals(part) {
                            consider(sub, &mut best);
                        }
                    }
                }
            }
            if !run.is_empty() {
                consider(vec![run], &mut best);
            }
            best
        }
    }
}

/// If the class matches exactly one byte — or exactly the upper/lower
/// pair of one ASCII letter — returns the lowercase byte.
fn literal_byte_of_class(set: &crate::classes::ClassSet) -> Option<u8> {
    if let Some(b) = set.as_single_byte() {
        return Some(b.to_ascii_lowercase());
    }
    let ranges = set.ranges();
    if ranges.len() == 2
        && ranges.iter().all(|r| r.lo == r.hi)
        && ranges[0].lo.is_ascii_uppercase()
        && ranges[1].lo == ranges[0].lo + 32
    {
        return Some(ranges[1].lo);
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::{parse, Flags};

    fn pf(pat: &str) -> Option<Prefilter> {
        let flags = Flags::default();
        Prefilter::from_ast(&parse(pat, flags).expect("parse"))
    }

    fn pf_ci(pat: &str) -> Option<Prefilter> {
        let flags = Flags {
            case_insensitive: true,
            ..Flags::default()
        };
        Prefilter::from_ast(&parse(pat, flags).expect("parse"))
    }

    #[test]
    fn literal_run_extracted() {
        // Both runs are mandatory; the longer one is preferred.
        let p = pf(r"union\s+select").expect("prefilter");
        assert_eq!(p.literals(), &[b"select".to_vec()]);
    }

    #[test]
    fn prefers_longest_run() {
        let p = pf(r"or\s+sleep\s*\(").expect("prefilter");
        assert_eq!(p.literals(), &[b"sleep".to_vec()]);
    }

    #[test]
    fn alternation_unions_requirements() {
        let p = pf("select|insert|delete").expect("prefilter");
        assert_eq!(p.literals().len(), 3);
        assert!(p.maybe_matches(b"xx INSERT xx"));
        assert!(!p.maybe_matches(b"nothing here"));
    }

    #[test]
    fn alternation_with_open_branch_disables() {
        assert_eq!(pf("select|[0-9]+"), None);
    }

    #[test]
    fn star_contributes_nothing() {
        assert_eq!(pf(r"\w*"), None);
        // But a mandatory tail still provides a literal.
        let p = pf(r"\w*=true").expect("prefilter");
        assert_eq!(p.literals(), &[b"=true".to_vec()]);
    }

    #[test]
    fn case_insensitive_patterns_fold() {
        let p = pf_ci("UNION").expect("prefilter");
        assert_eq!(p.literals(), &[b"union".to_vec()]);
        assert!(p.maybe_matches(b"UnIoN"));
    }

    #[test]
    fn ci_search_is_sound_for_cs_patterns() {
        // Case-sensitive pattern: prefilter may pass a non-matching
        // haystack (false positive is fine), never block a matching one.
        let p = pf("UNION").expect("prefilter");
        assert!(p.maybe_matches(b"union all"));
        assert!(p.maybe_matches(b"UNION all"));
    }

    #[test]
    fn contains_ascii_ci_edges() {
        assert!(contains_ascii_ci(b"abc", b"abc"));
        assert!(contains_ascii_ci(b"xABCx", b"abc"));
        assert!(!contains_ascii_ci(b"ab", b"abc"));
        assert!(contains_ascii_ci(b"", b""));
        // Single-byte needles, non-alpha first bytes, and repeated
        // first bytes that force the skip loop to advance.
        assert!(contains_ascii_ci(b"x=1", b"="));
        assert!(contains_ascii_ci(b"==select", b"=select"));
        assert!(contains_ascii_ci(b"sssSELECT", b"select"));
        assert!(!contains_ascii_ci(b"sssSELEC", b"select"));
        assert!(contains_ascii_ci(b"SsSeLeCt", b"select"));
        assert!(!contains_ascii_ci(b"zzzz", b"a"));
    }

    #[test]
    fn bucketed_matcher_handles_mixed_case_first_bytes() {
        // > BUCKETED_THRESHOLD literals forces the bucketed path.
        let p = pf("alpha|bravo|charly|delta|echo|foxtrot|golf|hotel|india")
            .expect("bucketed prefilter");
        assert!(p.maybe_matches(b"xx GOLF xx"));
        assert!(p.maybe_matches(b"xx golf xx"));
        assert!(p.maybe_matches(b"Hotel California"));
        assert!(!p.maybe_matches(b"nothing relevant"));
    }
}
