//! Mandatory-literal prefilter.
//!
//! IDS workloads run hundreds of patterns over every request, and the
//! overwhelming majority of requests match none of them. Before
//! dispatching to the VM we extract, from the AST, a small set of
//! literals such that *every* match must contain at least one of them.
//! If none of the literals occurs in the haystack (ASCII
//! case-insensitively), the VM run is skipped entirely.

use crate::ast::Ast;

/// Maximum number of alternative literals before we give up on
/// prefiltering. Large sets (IDS keyword-inventory rules can require
/// one of hundreds of function names) switch to a bucketed
/// first-byte matcher, so the ceiling is generous.
const MAX_LITERALS: usize = 400;

/// Literal-set size above which the bucketed matcher is used instead
/// of the linear scan.
const BUCKETED_THRESHOLD: usize = 8;

/// A disjunction of required literals: a haystack that contains none
/// of them cannot match the pattern.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Prefilter {
    /// Literals stored lowercased; matching is ASCII case-insensitive,
    /// which is sound for both case-sensitive and case-insensitive
    /// patterns (the prefilter is allowed false positives, never false
    /// negatives).
    literals: Vec<Vec<u8>>,
    /// For large sets: literal indices bucketed by first byte, so one
    /// pass over the haystack checks only the candidates that can
    /// start at each position (a poor man's Aho–Corasick).
    buckets: Option<Box<[Vec<u32>; 256]>>,
    /// Prefix skipper, when every match must *begin* with a known
    /// literal.
    prefixes: Option<PrefixSkip>,
}

/// Start-anchored literal requirement: every match of the pattern
/// begins (byte-wise, ASCII case-insensitively) with one of `lits`.
/// The VM uses it to jump between candidate start positions instead of
/// seeding a doomed root thread at every byte.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PrefixSkip {
    /// Candidate prefixes, lowercased, all non-empty.
    lits: Vec<Vec<u8>>,
    /// `first[b]` is true when some prefix starts with byte `b` (both
    /// cases), so the scan loop is a table lookup per byte.
    first: Box<[bool; 256]>,
}

impl PrefixSkip {
    fn new(lits: Vec<Vec<u8>>) -> PrefixSkip {
        let mut first = Box::new([false; 256]);
        for lit in &lits {
            first[lit[0] as usize] = true;
            first[lit[0].to_ascii_uppercase() as usize] = true;
        }
        PrefixSkip { lits, first }
    }

    /// The earliest position `q >= start` where a match could begin
    /// (i.e. some prefix literal occurs at `q`), or `None` when no
    /// match can start anywhere in `hay[start..]`.
    pub fn next_match_start(&self, hay: &[u8], start: usize) -> Option<usize> {
        let mut q = start;
        while q < hay.len() {
            if self.first[hay[q] as usize] {
                let rest = &hay[q..];
                for lit in &self.lits {
                    if lit.len() <= rest.len() && rest[..lit.len()].eq_ignore_ascii_case(lit) {
                        return Some(q);
                    }
                }
            }
            q += 1;
        }
        None
    }
}

impl Prefilter {
    /// Attempts to derive a prefilter from `ast`. Returns `None` when
    /// no useful literal requirement exists (the VM must always run).
    pub fn from_ast(ast: &Ast) -> Option<Prefilter> {
        let lits = required_literals(ast)?;
        // A prefilter of very short literals (all length 1) still pays
        // off versus a VM run, so accept any non-empty requirement.
        if lits.is_empty() || lits.len() > MAX_LITERALS {
            return None;
        }
        let buckets = if lits.len() > BUCKETED_THRESHOLD {
            // Literals are lowercased, but the haystack is not:
            // bucket each literal under *both* cases of its first
            // byte so the scan loop indexes with the raw haystack
            // byte instead of case-folding every position.
            let mut b: Box<[Vec<u32>; 256]> = Box::new(std::array::from_fn(|_| Vec::new()));
            for (i, lit) in lits.iter().enumerate() {
                b[lit[0] as usize].push(i as u32);
                let up = lit[0].to_ascii_uppercase();
                if up != lit[0] {
                    b[up as usize].push(i as u32);
                }
            }
            Some(b)
        } else {
            None
        };
        let prefixes = prefix_literals(ast)
            .filter(|p| !p.is_empty() && p.len() <= MAX_LITERALS)
            .map(PrefixSkip::new);
        Some(Prefilter {
            literals: lits,
            buckets,
            prefixes,
        })
    }

    /// The start-anchored skipper, when every match must begin with a
    /// known literal.
    pub fn prefix_skip(&self) -> Option<&PrefixSkip> {
        self.prefixes.as_ref()
    }

    /// True when the haystack may match the pattern (i.e. it contains
    /// at least one required literal).
    pub fn maybe_matches(&self, hay: &[u8]) -> bool {
        match &self.buckets {
            None => self.literals.iter().any(|lit| contains_ascii_ci(hay, lit)),
            Some(buckets) => {
                for (i, &b) in hay.iter().enumerate() {
                    let rest = &hay[i..];
                    // Buckets carry both cases of each first byte, so
                    // the raw byte indexes directly (no per-byte fold).
                    for &li in buckets[b as usize].iter() {
                        let lit = &self.literals[li as usize];
                        if lit.len() <= rest.len() && rest[..lit.len()].eq_ignore_ascii_case(lit) {
                            return true;
                        }
                    }
                }
                false
            }
        }
    }

    /// The required literals (lowercased).
    pub fn literals(&self) -> &[Vec<u8>] {
        &self.literals
    }

    /// Length of the shortest required literal.
    pub fn min_literal_len(&self) -> usize {
        self.literals.iter().map(Vec::len).min().unwrap_or(0)
    }
}

/// ASCII case-insensitive substring search; `needle` must already be
/// lowercase.
///
/// The hot loop skips on the first byte (both cases precomputed once,
/// not folded per haystack byte) and confirms the second byte before
/// paying for a full comparison — the same start-byte discipline the
/// bucketed matcher uses.
fn contains_ascii_ci(hay: &[u8], needle: &[u8]) -> bool {
    if needle.is_empty() {
        return true;
    }
    if needle.len() > hay.len() {
        return false;
    }
    let first = needle[0];
    let first_up = first.to_ascii_uppercase();
    let end = hay.len() - needle.len();
    let mut i = 0;
    while i <= end {
        let Some(off) = hay[i..=end]
            .iter()
            .position(|&b| b == first || b == first_up)
        else {
            return false;
        };
        let at = i + off;
        if needle.len() == 1
            || (hay[at + 1].eq_ignore_ascii_case(&needle[1])
                && hay[at + 2..at + needle.len()].eq_ignore_ascii_case(&needle[2..]))
        {
            return true;
        }
        i = at + 1;
    }
    false
}

/// Computes the required-literal disjunction for `ast`, or `None` if
/// no requirement can be derived.
fn required_literals(ast: &Ast) -> Option<Vec<Vec<u8>>> {
    match ast {
        Ast::Empty
        | Ast::StartText
        | Ast::EndText
        | Ast::WordBoundary
        | Ast::NotWordBoundary
        | Ast::Dot { .. } => None,
        Ast::Literal(b) => Some(vec![vec![b.to_ascii_lowercase()]]),
        Ast::Class(set) => {
            // A class that is a single byte — or the case-folded pair
            // of one ASCII letter — acts as a literal byte.
            literal_byte_of_class(set).map(|b| vec![vec![b]])
        }
        Ast::Group(inner) => required_literals(inner),
        Ast::Repeat { ast, min, .. } => {
            if *min >= 1 {
                required_literals(ast)
            } else {
                None
            }
        }
        Ast::Alternate(branches) => {
            let mut all = Vec::new();
            for b in branches {
                let mut lits = required_literals(b)?;
                all.append(&mut lits);
                if all.len() > MAX_LITERALS {
                    return None;
                }
            }
            Some(all)
        }
        Ast::Concat(parts) => {
            // Best candidate: the longest contiguous literal run, or
            // any single part's own requirement — whichever has the
            // longest shortest-literal.
            let mut best: Option<Vec<Vec<u8>>> = None;
            let mut run: Vec<u8> = Vec::new();
            let consider = |cand: Vec<Vec<u8>>, best: &mut Option<Vec<Vec<u8>>>| {
                let cand_min = cand.iter().map(Vec::len).min().unwrap_or(0);
                let best_min = best
                    .as_ref()
                    .map(|b| b.iter().map(Vec::len).min().unwrap_or(0))
                    .unwrap_or(0);
                // Prefer longer literals; break ties toward fewer
                // alternatives.
                let better = cand_min > best_min
                    || (cand_min == best_min
                        && best.as_ref().map(|b| cand.len() < b.len()).unwrap_or(true));
                if better && cand_min > 0 {
                    *best = Some(cand);
                }
            };
            for part in parts {
                let lit = match part {
                    Ast::Literal(b) => Some(b.to_ascii_lowercase()),
                    Ast::Class(set) => literal_byte_of_class(set),
                    Ast::Group(inner) => match inner.as_ref() {
                        Ast::Literal(b) => Some(b.to_ascii_lowercase()),
                        _ => None,
                    },
                    _ => None,
                };
                match lit {
                    Some(b) => run.push(b),
                    None => {
                        if !run.is_empty() {
                            consider(vec![std::mem::take(&mut run)], &mut best);
                        }
                        // Non-literal parts may still carry their own
                        // requirement (e.g. a group of alternations).
                        if let Some(sub) = required_literals(part) {
                            consider(sub, &mut best);
                        }
                    }
                }
            }
            if !run.is_empty() {
                consider(vec![run], &mut best);
            }
            best
        }
    }
}

/// Longest fixed prefix run worth accumulating; longer prefixes add
/// verification cost without improving skip precision.
const MAX_PREFIX_LEN: usize = 16;

/// Computes the start-anchored literal disjunction: a set `P` such
/// that every match of `ast` is non-empty and begins (ASCII
/// case-insensitively) with some element of `P`. Returns `None` when
/// no such set exists (e.g. the pattern can match the empty string or
/// starts with an open class).
fn prefix_literals(ast: &Ast) -> Option<Vec<Vec<u8>>> {
    match ast {
        // Zero-width (or empty-capable) patterns have no first byte.
        Ast::Empty
        | Ast::StartText
        | Ast::EndText
        | Ast::WordBoundary
        | Ast::NotWordBoundary
        | Ast::Dot { .. } => None,
        Ast::Literal(b) => Some(vec![vec![b.to_ascii_lowercase()]]),
        Ast::Class(set) => literal_byte_of_class(set).map(|b| vec![vec![b]]),
        Ast::Group(inner) => prefix_literals(inner),
        // One mandatory iteration starts the match; min == 0 can match
        // empty, so it contributes no requirement on its own.
        Ast::Repeat { ast, min, .. } => {
            if *min >= 1 {
                prefix_literals(ast)
            } else {
                None
            }
        }
        Ast::Alternate(branches) => {
            let mut all = Vec::new();
            for b in branches {
                let mut lits = prefix_literals(b)?;
                all.append(&mut lits);
                if all.len() > MAX_LITERALS {
                    return None;
                }
            }
            Some(all)
        }
        Ast::Concat(parts) => concat_prefix_literals(parts),
    }
}

/// Prefix requirement of a concatenation: leading zero-width
/// assertions are skipped, then either a fixed literal run is
/// accumulated or the first consuming part's own requirement is taken.
fn concat_prefix_literals(parts: &[Ast]) -> Option<Vec<Vec<u8>>> {
    let mut run: Vec<u8> = Vec::new();
    for (i, part) in parts.iter().enumerate() {
        if matches!(
            part,
            Ast::Empty | Ast::StartText | Ast::EndText | Ast::WordBoundary | Ast::NotWordBoundary
        ) {
            continue;
        }
        if let Some(b) = fixed_byte(part) {
            run.push(b);
            if run.len() >= MAX_PREFIX_LEN {
                return Some(vec![run]);
            }
            continue;
        }
        // First non-fixed part: a fixed run already pins the prefix.
        if !run.is_empty() {
            return Some(vec![run]);
        }
        return match part {
            // An optional head: the match starts with the head (one or
            // more iterations) or with whatever follows it (zero).
            Ast::Repeat {
                ast: inner, min: 0, ..
            } => {
                let mut all = prefix_literals(inner)?;
                all.extend(concat_prefix_literals(&parts[i + 1..])?);
                if all.len() > MAX_LITERALS {
                    None
                } else {
                    Some(all)
                }
            }
            _ => prefix_literals(part),
        };
    }
    if run.is_empty() {
        None
    } else {
        Some(vec![run])
    }
}

/// The single byte a part always matches (lowercased), if any.
fn fixed_byte(part: &Ast) -> Option<u8> {
    match part {
        Ast::Literal(b) => Some(b.to_ascii_lowercase()),
        Ast::Class(set) => literal_byte_of_class(set),
        Ast::Group(inner) => fixed_byte(inner),
        _ => None,
    }
}

/// If the class matches exactly one byte — or exactly the upper/lower
/// pair of one ASCII letter — returns the lowercase byte.
fn literal_byte_of_class(set: &crate::classes::ClassSet) -> Option<u8> {
    if let Some(b) = set.as_single_byte() {
        return Some(b.to_ascii_lowercase());
    }
    let ranges = set.ranges();
    if ranges.len() == 2
        && ranges.iter().all(|r| r.lo == r.hi)
        && ranges[0].lo.is_ascii_uppercase()
        && ranges[1].lo == ranges[0].lo + 32
    {
        return Some(ranges[1].lo);
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::{parse, Flags};

    fn pf(pat: &str) -> Option<Prefilter> {
        let flags = Flags::default();
        Prefilter::from_ast(&parse(pat, flags).expect("parse"))
    }

    fn pf_ci(pat: &str) -> Option<Prefilter> {
        let flags = Flags {
            case_insensitive: true,
            ..Flags::default()
        };
        Prefilter::from_ast(&parse(pat, flags).expect("parse"))
    }

    #[test]
    fn literal_run_extracted() {
        // Both runs are mandatory; the longer one is preferred.
        let p = pf(r"union\s+select").expect("prefilter");
        assert_eq!(p.literals(), &[b"select".to_vec()]);
    }

    #[test]
    fn prefers_longest_run() {
        let p = pf(r"or\s+sleep\s*\(").expect("prefilter");
        assert_eq!(p.literals(), &[b"sleep".to_vec()]);
    }

    #[test]
    fn alternation_unions_requirements() {
        let p = pf("select|insert|delete").expect("prefilter");
        assert_eq!(p.literals().len(), 3);
        assert!(p.maybe_matches(b"xx INSERT xx"));
        assert!(!p.maybe_matches(b"nothing here"));
    }

    #[test]
    fn alternation_with_open_branch_disables() {
        assert_eq!(pf("select|[0-9]+"), None);
    }

    #[test]
    fn star_contributes_nothing() {
        assert_eq!(pf(r"\w*"), None);
        // But a mandatory tail still provides a literal.
        let p = pf(r"\w*=true").expect("prefilter");
        assert_eq!(p.literals(), &[b"=true".to_vec()]);
    }

    #[test]
    fn case_insensitive_patterns_fold() {
        let p = pf_ci("UNION").expect("prefilter");
        assert_eq!(p.literals(), &[b"union".to_vec()]);
        assert!(p.maybe_matches(b"UnIoN"));
    }

    #[test]
    fn ci_search_is_sound_for_cs_patterns() {
        // Case-sensitive pattern: prefilter may pass a non-matching
        // haystack (false positive is fine), never block a matching one.
        let p = pf("UNION").expect("prefilter");
        assert!(p.maybe_matches(b"union all"));
        assert!(p.maybe_matches(b"UNION all"));
    }

    #[test]
    fn contains_ascii_ci_edges() {
        assert!(contains_ascii_ci(b"abc", b"abc"));
        assert!(contains_ascii_ci(b"xABCx", b"abc"));
        assert!(!contains_ascii_ci(b"ab", b"abc"));
        assert!(contains_ascii_ci(b"", b""));
        // Single-byte needles, non-alpha first bytes, and repeated
        // first bytes that force the skip loop to advance.
        assert!(contains_ascii_ci(b"x=1", b"="));
        assert!(contains_ascii_ci(b"==select", b"=select"));
        assert!(contains_ascii_ci(b"sssSELECT", b"select"));
        assert!(!contains_ascii_ci(b"sssSELEC", b"select"));
        assert!(contains_ascii_ci(b"SsSeLeCt", b"select"));
        assert!(!contains_ascii_ci(b"zzzz", b"a"));
    }

    fn prefixes(pat: &str) -> Option<Vec<Vec<u8>>> {
        let flags = Flags {
            case_insensitive: true,
            ..Flags::default()
        };
        prefix_literals(&parse(pat, flags).expect("parse"))
    }

    #[test]
    fn prefix_of_literal_run() {
        assert_eq!(prefixes("select"), Some(vec![b"select".to_vec()]));
        // A non-fixed tail does not extend the prefix but keeps it.
        assert_eq!(prefixes(r"select.+from"), Some(vec![b"select".to_vec()]));
        assert_eq!(prefixes(r"length\s*\("), Some(vec![b"length".to_vec()]));
    }

    #[test]
    fn leading_assertions_are_skipped() {
        assert_eq!(prefixes(r"\bselect\b"), Some(vec![b"select".to_vec()]));
        assert_eq!(prefixes("^union"), Some(vec![b"union".to_vec()]));
    }

    #[test]
    fn alternation_unions_prefixes() {
        let p = prefixes("select|insert").expect("prefixes");
        assert_eq!(p, vec![b"select".to_vec(), b"insert".to_vec()]);
        // One open branch poisons the requirement.
        assert_eq!(prefixes(r"select|[0-9]+"), None);
    }

    #[test]
    fn optional_head_unions_with_rest() {
        // `x*` may match zero times, so the match can start with `x`
        // (one-plus iterations) or with `ab` (zero iterations).
        let p = prefixes("x*ab").expect("prefixes");
        assert_eq!(p, vec![b"x".to_vec(), b"ab".to_vec()]);
        // An open optional head gives up.
        assert_eq!(prefixes(r"\s*ab"), None);
    }

    #[test]
    fn empty_capable_patterns_have_no_prefix() {
        assert_eq!(prefixes(r"a*"), None);
        assert_eq!(prefixes(""), None);
        assert_eq!(prefixes(r"\b"), None);
    }

    #[test]
    fn next_match_start_jumps_case_insensitively() {
        let p = pf_ci(r"\bselect\b").expect("prefilter");
        let skip = p.prefix_skip().expect("prefix skip");
        let hay = b"x=1 or SELECT a, select b";
        assert_eq!(skip.next_match_start(hay, 0), Some(7));
        assert_eq!(skip.next_match_start(hay, 8), Some(17));
        assert_eq!(skip.next_match_start(hay, 18), None);
        assert_eq!(skip.next_match_start(hay, hay.len()), None);
    }

    #[test]
    fn skipping_patterns_still_count_correctly() {
        // End-to-end through the VM: the skip must not change counts.
        let re = crate::RegexBuilder::new()
            .case_insensitive(true)
            .build(r"\bselect\b")
            .expect("build");
        assert_eq!(re.count_all(b"select from (select) reselect"), 2);
        assert_eq!(re.count_all(b"selec"), 0);
        assert_eq!(re.count_all(b""), 0);
    }

    #[test]
    fn bucketed_matcher_handles_mixed_case_first_bytes() {
        // > BUCKETED_THRESHOLD literals forces the bucketed path.
        let p = pf("alpha|bravo|charly|delta|echo|foxtrot|golf|hotel|india")
            .expect("bucketed prefilter");
        assert!(p.maybe_matches(b"xx GOLF xx"));
        assert!(p.maybe_matches(b"xx golf xx"));
        assert!(p.maybe_matches(b"Hotel California"));
        assert!(!p.maybe_matches(b"nothing relevant"));
    }
}
