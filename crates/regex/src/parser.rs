//! Recursive-descent parser from pattern text to [`Ast`].

use crate::ast::Ast;
use crate::classes::{perl_digit, perl_space, perl_word, ClassSet};
use crate::error::{Error, ErrorKind};

/// Parse-time flags, adjustable inline with `(?i)` / `(?s)` /
/// `(?i:...)` and their `-` negations.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Flags {
    /// ASCII case-insensitive matching.
    pub case_insensitive: bool,
    /// `.` also matches `\n`.
    pub dot_matches_newline: bool,
}

/// Parses `pattern` with the given starting flags.
pub fn parse(pattern: &str, flags: Flags) -> Result<Ast, Error> {
    let mut p = Parser {
        input: pattern.as_bytes(),
        pos: 0,
    };
    let ast = p.parse_alternate(flags, 0)?;
    if p.pos < p.input.len() {
        // The only way parse_alternate stops early is an unmatched `)`.
        return Err(Error::new(ErrorKind::UnbalancedCloseParen, p.pos));
    }
    Ok(ast)
}

struct Parser<'p> {
    input: &'p [u8],
    pos: usize,
}

impl<'p> Parser<'p> {
    fn peek(&self) -> Option<u8> {
        self.input.get(self.pos).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let b = self.peek();
        if b.is_some() {
            self.pos += 1;
        }
        b
    }

    fn err(&self, kind: ErrorKind) -> Error {
        Error::new(kind, self.pos)
    }

    /// alternation := concat (`|` concat)*
    ///
    /// A standalone flag setting such as `(?i)` inside one branch
    /// stays in effect for the following branches of the same group,
    /// matching PCRE semantics — so the flags are threaded through.
    fn parse_alternate(&mut self, flags: Flags, depth: usize) -> Result<Ast, Error> {
        let mut cur = flags;
        let mut branches = vec![self.parse_concat(&mut cur, depth)?];
        while self.peek() == Some(b'|') {
            self.bump();
            branches.push(self.parse_concat(&mut cur, depth)?);
        }
        if branches.len() == 1 {
            Ok(branches.pop().expect("one branch"))
        } else {
            Ok(Ast::Alternate(branches))
        }
    }

    /// concat := repeat*
    fn parse_concat(&mut self, flags: &mut Flags, depth: usize) -> Result<Ast, Error> {
        let mut parts: Vec<Ast> = Vec::new();
        loop {
            match self.peek() {
                None | Some(b'|') | Some(b')') => break,
                Some(b'*') | Some(b'+') | Some(b'?') => {
                    // A quantifier here means the previous atom is missing
                    // (start of concat) — quantifiers are otherwise consumed
                    // by parse_repeat.
                    return Err(self.err(ErrorKind::RepetitionMissingTarget));
                }
                _ => {}
            }
            // Inline flag settings like `(?i)` affect the rest of the
            // concatenation, so they are handled here.
            if let Some(new_flags) = self.try_parse_flag_setting(*flags)? {
                *flags = new_flags;
                continue;
            }
            parts.push(self.parse_repeat(*flags, depth)?);
        }
        match parts.len() {
            0 => Ok(Ast::Empty),
            1 => Ok(parts.pop().expect("one part")),
            _ => Ok(Ast::Concat(parts)),
        }
    }

    /// If the input begins a standalone flag group `(?flags)`,
    /// consumes it and returns the updated flags.
    fn try_parse_flag_setting(&mut self, flags: Flags) -> Result<Option<Flags>, Error> {
        let save = self.pos;
        if self.peek() != Some(b'(') {
            return Ok(None);
        }
        self.bump();
        if self.peek() != Some(b'?') {
            self.pos = save;
            return Ok(None);
        }
        self.bump();
        let mut new_flags = flags;
        let mut negate = false;
        let mut saw_flag = false;
        loop {
            match self.peek() {
                Some(b'i') => {
                    self.bump();
                    new_flags.case_insensitive = !negate;
                    saw_flag = true;
                }
                Some(b's') => {
                    self.bump();
                    new_flags.dot_matches_newline = !negate;
                    saw_flag = true;
                }
                Some(b'-') if !negate => {
                    self.bump();
                    negate = true;
                }
                Some(b')') if saw_flag || negate => {
                    self.bump();
                    return Ok(Some(new_flags));
                }
                // `(?:`, `(?i:` and unknown constructs are handled by
                // parse_atom; rewind.
                _ => {
                    self.pos = save;
                    return Ok(None);
                }
            }
        }
    }

    /// repeat := atom quantifier?
    fn parse_repeat(&mut self, flags: Flags, depth: usize) -> Result<Ast, Error> {
        let atom = self.parse_atom(flags, depth)?;
        let (min, max) = match self.peek() {
            Some(b'*') => {
                self.bump();
                (0, None)
            }
            Some(b'+') => {
                self.bump();
                (1, None)
            }
            Some(b'?') => {
                self.bump();
                (0, Some(1))
            }
            Some(b'{') => match self.try_parse_counted()? {
                Some(bounds) => bounds,
                // `{` not followed by a valid counted repetition is a
                // literal `{`, already consumed by parse_atom? No — the
                // atom was parsed before `{`; leave `{` for the next atom.
                None => return Ok(atom),
            },
            _ => return Ok(atom),
        };
        if let Some(m) = max {
            if min > m {
                return Err(self.err(ErrorKind::InvalidRepetition));
            }
        }
        let greedy = if self.peek() == Some(b'?') {
            self.bump();
            false
        } else {
            true
        };
        if matches!(
            atom,
            Ast::StartText | Ast::EndText | Ast::WordBoundary | Ast::NotWordBoundary
        ) {
            return Err(self.err(ErrorKind::RepetitionMissingTarget));
        }
        Ok(Ast::Repeat {
            ast: Box::new(atom),
            min,
            max,
            greedy,
        })
    }

    /// Attempts `{m}`, `{m,}`, `{m,n}`. Returns `Ok(None)` and rewinds
    /// when the braces do not form a counted repetition (then `{` is a
    /// literal, as in PCRE).
    fn try_parse_counted(&mut self) -> Result<Option<(u32, Option<u32>)>, Error> {
        let save = self.pos;
        debug_assert_eq!(self.peek(), Some(b'{'));
        self.bump();
        let min = match self.parse_decimal() {
            Some(n) => n,
            None => {
                self.pos = save;
                return Ok(None);
            }
        };
        match self.peek() {
            Some(b'}') => {
                self.bump();
                Ok(Some((min, Some(min))))
            }
            Some(b',') => {
                self.bump();
                let max = self.parse_decimal();
                if self.peek() == Some(b'}') {
                    self.bump();
                    Ok(Some((min, max)))
                } else {
                    self.pos = save;
                    Ok(None)
                }
            }
            _ => {
                self.pos = save;
                Ok(None)
            }
        }
    }

    fn parse_decimal(&mut self) -> Option<u32> {
        let start = self.pos;
        let mut value: u32 = 0;
        while let Some(b @ b'0'..=b'9') = self.peek() {
            self.bump();
            value = value.saturating_mul(10).saturating_add((b - b'0') as u32);
        }
        if self.pos == start {
            None
        } else {
            Some(value.min(u32::MAX / 2))
        }
    }

    /// atom := group | class | `.` | `^` | `$` | escape | literal
    fn parse_atom(&mut self, flags: Flags, depth: usize) -> Result<Ast, Error> {
        if depth > 250 {
            // Defence against stack exhaustion on adversarial patterns.
            return Err(self.err(ErrorKind::ProgramTooBig {
                estimated: usize::MAX,
                limit: 250,
            }));
        }
        match self.bump() {
            None => Err(self.err(ErrorKind::UnexpectedEof)),
            Some(b'(') => self.parse_group(flags, depth),
            Some(b'[') => {
                let set = self.parse_class(flags)?;
                Ok(Ast::Class(set))
            }
            Some(b'.') => Ok(Ast::Dot {
                matches_newline: flags.dot_matches_newline,
            }),
            Some(b'^') => Ok(Ast::StartText),
            Some(b'$') => Ok(Ast::EndText),
            Some(b'\\') => self.parse_escape(flags),
            Some(b) => Ok(self.literal(b, flags)),
        }
    }

    fn literal(&self, b: u8, flags: Flags) -> Ast {
        if flags.case_insensitive && b.is_ascii_alphabetic() {
            let mut set = ClassSet::single(b);
            set.case_fold();
            Ast::Class(set)
        } else {
            Ast::Literal(b)
        }
    }

    fn parse_group(&mut self, flags: Flags, depth: usize) -> Result<Ast, Error> {
        let mut flags = flags;
        if self.peek() == Some(b'?') {
            self.bump();
            // Parse optional flags then `:`.
            let mut negate = false;
            loop {
                match self.peek() {
                    Some(b'i') => {
                        self.bump();
                        flags.case_insensitive = !negate;
                    }
                    Some(b's') => {
                        self.bump();
                        flags.dot_matches_newline = !negate;
                    }
                    Some(b'-') if !negate => {
                        self.bump();
                        negate = true;
                    }
                    Some(b':') => {
                        self.bump();
                        break;
                    }
                    Some(c) => return Err(self.err(ErrorKind::UnknownFlag(c as char))),
                    None => return Err(self.err(ErrorKind::UnexpectedEof)),
                }
            }
        }
        let inner = self.parse_alternate(flags, depth + 1)?;
        if self.bump() != Some(b')') {
            return Err(self.err(ErrorKind::UnbalancedOpenParen));
        }
        Ok(Ast::Group(Box::new(inner)))
    }

    /// Escapes outside character classes.
    fn parse_escape(&mut self, flags: Flags) -> Result<Ast, Error> {
        match self.bump() {
            None => Err(self.err(ErrorKind::UnexpectedEof)),
            Some(b'd') => Ok(Ast::Class(perl_digit())),
            Some(b'D') => {
                let mut s = perl_digit();
                s.negate();
                Ok(Ast::Class(s))
            }
            Some(b's') => Ok(Ast::Class(perl_space())),
            Some(b'S') => {
                let mut s = perl_space();
                s.negate();
                Ok(Ast::Class(s))
            }
            Some(b'w') => Ok(Ast::Class(perl_word())),
            Some(b'W') => {
                let mut s = perl_word();
                s.negate();
                Ok(Ast::Class(s))
            }
            Some(b'x') => {
                let b = self.parse_hex_byte()?;
                Ok(self.literal(b, flags))
            }
            Some(b'b') => Ok(Ast::WordBoundary),
            Some(b'B') => Ok(Ast::NotWordBoundary),
            Some(b'n') => Ok(Ast::Literal(b'\n')),
            Some(b'r') => Ok(Ast::Literal(b'\r')),
            Some(b't') => Ok(Ast::Literal(b'\t')),
            Some(b'f') => Ok(Ast::Literal(0x0c)),
            Some(b'v') => Ok(Ast::Literal(0x0b)),
            Some(b'0') => Ok(Ast::Literal(0x00)),
            Some(b) if !b.is_ascii_alphanumeric() => Ok(self.literal(b, flags)),
            Some(b) => Err(self.err(ErrorKind::InvalidEscape(b as char))),
        }
    }

    fn parse_hex_byte(&mut self) -> Result<u8, Error> {
        let hi = self
            .bump()
            .and_then(hex_value)
            .ok_or_else(|| self.err(ErrorKind::InvalidHexEscape))?;
        let lo = self
            .bump()
            .and_then(hex_value)
            .ok_or_else(|| self.err(ErrorKind::InvalidHexEscape))?;
        Ok(hi * 16 + lo)
    }

    /// Parses a `[...]` class body; the opening `[` is consumed.
    fn parse_class(&mut self, flags: Flags) -> Result<ClassSet, Error> {
        let mut set = ClassSet::empty();
        let negated = if self.peek() == Some(b'^') {
            self.bump();
            true
        } else {
            false
        };
        let mut first = true;
        loop {
            let b = match self.bump() {
                None => return Err(self.err(ErrorKind::UnclosedClass)),
                Some(b']') if !first => break,
                Some(b) => b,
            };
            first = false;
            // An item is either a predefined class escape, or a byte
            // possibly followed by `-byte` forming a range.
            let lo = match b {
                b'\\' => match self.class_escape()? {
                    ClassItem::Set(s) => {
                        set.union(&s);
                        continue;
                    }
                    ClassItem::Byte(v) => v,
                },
                _ => b,
            };
            if self.peek() == Some(b'-') && self.input.get(self.pos + 1) != Some(&b']') {
                self.bump(); // consume `-`
                let hi = match self.bump() {
                    None => return Err(self.err(ErrorKind::UnclosedClass)),
                    Some(b'\\') => match self.class_escape()? {
                        ClassItem::Byte(v) => v,
                        ClassItem::Set(_) => return Err(self.err(ErrorKind::InvalidClassRange)),
                    },
                    Some(v) => v,
                };
                if lo > hi {
                    return Err(self.err(ErrorKind::InvalidClassRange));
                }
                set.push_range(lo, hi);
            } else {
                set.push_range(lo, lo);
            }
        }
        if set.is_empty() {
            return Err(self.err(ErrorKind::EmptyClass));
        }
        if flags.case_insensitive {
            set.case_fold();
        }
        if negated {
            set.negate();
        }
        Ok(set)
    }

    /// Escapes inside character classes.
    fn class_escape(&mut self) -> Result<ClassItem, Error> {
        match self.bump() {
            None => Err(self.err(ErrorKind::UnclosedClass)),
            Some(b'd') => Ok(ClassItem::Set(perl_digit())),
            Some(b'D') => {
                let mut s = perl_digit();
                s.negate();
                Ok(ClassItem::Set(s))
            }
            Some(b's') => Ok(ClassItem::Set(perl_space())),
            Some(b'S') => {
                let mut s = perl_space();
                s.negate();
                Ok(ClassItem::Set(s))
            }
            Some(b'w') => Ok(ClassItem::Set(perl_word())),
            Some(b'W') => {
                let mut s = perl_word();
                s.negate();
                Ok(ClassItem::Set(s))
            }
            Some(b'x') => Ok(ClassItem::Byte(self.parse_hex_byte()?)),
            Some(b'n') => Ok(ClassItem::Byte(b'\n')),
            Some(b'r') => Ok(ClassItem::Byte(b'\r')),
            Some(b't') => Ok(ClassItem::Byte(b'\t')),
            Some(b'f') => Ok(ClassItem::Byte(0x0c)),
            Some(b'v') => Ok(ClassItem::Byte(0x0b)),
            Some(b'0') => Ok(ClassItem::Byte(0x00)),
            Some(b) if !b.is_ascii_alphanumeric() => Ok(ClassItem::Byte(b)),
            Some(b) => Err(self.err(ErrorKind::InvalidEscape(b as char))),
        }
    }
}

enum ClassItem {
    Byte(u8),
    Set(ClassSet),
}

fn hex_value(b: u8) -> Option<u8> {
    match b {
        b'0'..=b'9' => Some(b - b'0'),
        b'a'..=b'f' => Some(b - b'a' + 10),
        b'A'..=b'F' => Some(b - b'A' + 10),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(s: &str) -> Ast {
        parse(s, Flags::default()).expect("parse")
    }

    #[test]
    fn literal_concat() {
        assert_eq!(
            p("ab"),
            Ast::Concat(vec![Ast::Literal(b'a'), Ast::Literal(b'b')])
        );
    }

    #[test]
    fn alternation_order_preserved() {
        match p("a|b|c") {
            Ast::Alternate(branches) => assert_eq!(branches.len(), 3),
            other => panic!("expected alternate, got {other:?}"),
        }
    }

    #[test]
    fn quantifiers() {
        match p("a+?") {
            Ast::Repeat {
                min, max, greedy, ..
            } => {
                assert_eq!((min, max, greedy), (1, None, false));
            }
            other => panic!("unexpected {other:?}"),
        }
        match p("a{2,5}") {
            Ast::Repeat {
                min, max, greedy, ..
            } => {
                assert_eq!((min, max, greedy), (2, Some(5), true));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn brace_without_bounds_is_literal() {
        assert_eq!(
            p("a{b"),
            Ast::Concat(vec![
                Ast::Literal(b'a'),
                Ast::Literal(b'{'),
                Ast::Literal(b'b')
            ])
        );
    }

    #[test]
    fn class_with_range_and_negation() {
        match p("[^a-z0]") {
            Ast::Class(set) => {
                assert!(!set.contains(b'm'));
                assert!(!set.contains(b'0'));
                assert!(set.contains(b'A'));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn class_leading_close_bracket_is_literal() {
        match p("[]a]") {
            Ast::Class(set) => {
                assert!(set.contains(b']') && set.contains(b'a'));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn inline_case_insensitive_group() {
        match p("(?i:abc)") {
            Ast::Group(inner) => match *inner {
                Ast::Concat(ref parts) => {
                    assert!(matches!(parts[0], Ast::Class(_)));
                }
                ref other => panic!("unexpected {other:?}"),
            },
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn standalone_flag_applies_to_rest() {
        // `(?i)` flips case sensitivity for the remainder of the branch.
        match p("a(?i)b") {
            Ast::Concat(parts) => {
                assert_eq!(parts[0], Ast::Literal(b'a'));
                assert!(matches!(parts[1], Ast::Class(_)));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn perl_class_escapes() {
        match p(r"\s") {
            Ast::Class(set) => assert!(set.contains(b' ') && set.contains(b'\t')),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn hex_escape() {
        assert_eq!(p(r"\x41"), Ast::Literal(b'A'));
    }

    #[test]
    fn errors_are_reported() {
        use crate::error::ErrorKind::*;
        assert!(matches!(
            parse("(a", Flags::default()).unwrap_err().kind(),
            UnbalancedOpenParen
        ));
        assert!(matches!(
            parse("a)", Flags::default()).unwrap_err().kind(),
            UnbalancedCloseParen
        ));
        assert!(matches!(
            parse("[a", Flags::default()).unwrap_err().kind(),
            UnclosedClass
        ));
        assert!(matches!(
            parse("*a", Flags::default()).unwrap_err().kind(),
            RepetitionMissingTarget
        ));
        assert!(matches!(
            parse(r"\q", Flags::default()).unwrap_err().kind(),
            InvalidEscape('q')
        ));
        assert!(matches!(
            parse("a{5,2}", Flags::default()).unwrap_err().kind(),
            InvalidRepetition
        ));
    }

    #[test]
    fn escaped_metacharacters() {
        assert_eq!(
            p(r"\(\)"),
            Ast::Concat(vec![Ast::Literal(b'('), Ast::Literal(b')')])
        );
    }
}
