//! Set-level multi-literal scanning: one pass over the haystack
//! reports, for a whole library of patterns at once, which patterns
//! have at least one of their required literals present.
//!
//! The per-pattern [`crate::Prefilter`] answers "can *this* pattern
//! possibly match?" with a private scan of the haystack; running it
//! for N patterns costs N haystack traversals. [`MultiLiteral`] is
//! the set-level replacement: an Aho–Corasick automaton whose goto
//! and fail links are built over ASCII-case-folded bytes, fully
//! resolved into a dense DFA at construction, so scanning is one
//! table lookup per haystack byte regardless of how many literals
//! (or patterns) the automaton carries.
//!
//! Soundness contract (shared with `Prefilter`): literals are stored
//! lowercased and matched ASCII case-insensitively, which permits
//! false positives (a candidate that the VM then rejects) but never
//! false negatives. A haystack position matches a literal here
//! exactly when `Prefilter::maybe_matches` would accept it, so the
//! candidate set produced by [`MultiLiteral::scan_into`] equals the
//! set of patterns whose own prefilter passes.

use crate::accel::skip_dense;
use std::collections::VecDeque;

/// Sentinel for an absent goto transition during construction.
const MISSING: u32 = u32::MAX;

/// A growable bitset over pattern ids, reused across scans.
///
/// This is the shared output currency of every set-level engine:
/// [`MultiLiteral::scan_into`] and the fused lazy DFA
/// (`crate::FusedSet::scan_into`) both insert into one caller-owned
/// instance — their id populations are disjoint by construction in
/// the feature layer — so an extraction needs exactly one bitset
/// scratch allocation regardless of how many engines run.
#[derive(Debug, Default, PartialEq, Eq)]
pub struct CandidateSet {
    bits: Vec<u64>,
    universe: usize,
}

impl Clone for CandidateSet {
    fn clone(&self) -> CandidateSet {
        CandidateSet {
            bits: self.bits.clone(),
            universe: self.universe,
        }
    }

    // Hot-path use is `scratch.clone_from(&base)` once per request:
    // delegate to Vec::clone_from so the scratch allocation is reused.
    fn clone_from(&mut self, source: &CandidateSet) {
        self.bits.clone_from(&source.bits);
        self.universe = source.universe;
    }
}

impl CandidateSet {
    /// An empty set over `universe` pattern ids.
    pub fn new(universe: usize) -> CandidateSet {
        CandidateSet {
            bits: vec![0; universe.div_ceil(64)],
            universe,
        }
    }

    /// Number of ids the set ranges over.
    pub fn universe(&self) -> usize {
        self.universe
    }

    /// Clears every bit (and re-sizes to `universe`).
    pub fn reset(&mut self, universe: usize) {
        self.universe = universe;
        self.bits.clear();
        self.bits.resize(universe.div_ceil(64), 0);
    }

    /// Inserts `id`; returns true when it was not already present.
    pub fn insert(&mut self, id: usize) -> bool {
        let (w, b) = (id / 64, 1u64 << (id % 64));
        let new = self.bits[w] & b == 0;
        self.bits[w] |= b;
        new
    }

    /// True when `id` is present.
    pub fn contains(&self, id: usize) -> bool {
        self.bits
            .get(id / 64)
            .is_some_and(|w| w & (1u64 << (id % 64)) != 0)
    }

    /// Number of ids present.
    pub fn count(&self) -> usize {
        self.bits.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Iterates the present ids in ascending order.
    pub fn iter(&self) -> impl Iterator<Item = usize> + '_ {
        self.bits.iter().enumerate().flat_map(|(wi, &w)| {
            std::iter::successors(Some(w), |&rem| Some(rem & rem.wrapping_sub(1)))
                .take_while(|&rem| rem != 0)
                .map(move |rem| wi * 64 + rem.trailing_zeros() as usize)
        })
    }
}

/// Accumulates `(pattern id, literal)` pairs and builds the automaton.
#[derive(Debug, Default)]
pub struct MultiLiteralBuilder {
    literals: Vec<(u32, Vec<u8>)>,
}

impl MultiLiteralBuilder {
    /// An empty builder.
    pub fn new() -> MultiLiteralBuilder {
        MultiLiteralBuilder::default()
    }

    /// Registers one required literal of `pattern`. The literal is
    /// ASCII-lowercased; empty literals are ignored (an empty
    /// requirement would make every haystack a candidate, which the
    /// caller models by not prefiltering the pattern at all).
    pub fn add(&mut self, pattern: u32, literal: &[u8]) {
        if literal.is_empty() {
            return;
        }
        let mut lit = literal.to_vec();
        lit.make_ascii_lowercase();
        self.literals.push((pattern, lit));
    }

    /// Number of literals registered so far.
    pub fn len(&self) -> usize {
        self.literals.len()
    }

    /// True when no literal has been registered.
    pub fn is_empty(&self) -> bool {
        self.literals.is_empty()
    }

    /// Builds the case-folded Aho–Corasick DFA.
    pub fn build(self) -> MultiLiteral {
        // Trie over lowercased literal bytes, stored directly in the
        // final dense-transition layout.
        let mut next: Vec<u32> = vec![MISSING; 256];
        let mut outputs: Vec<Vec<u32>> = vec![Vec::new()];
        for (pid, lit) in &self.literals {
            let mut s = 0usize;
            for &b in lit {
                let slot = s * 256 + b as usize;
                s = match next[slot] {
                    MISSING => {
                        let id = outputs.len() as u32;
                        next[slot] = id;
                        next.resize(next.len() + 256, MISSING);
                        outputs.push(Vec::new());
                        id as usize
                    }
                    t => t as usize,
                };
            }
            outputs[s].push(*pid);
        }
        // Breadth-first fail-link pass, resolving every transition so
        // the scan loop is a pure DFA step. A node's fail target is
        // strictly shallower, so by BFS order its transitions and
        // inherited outputs are final when the node is processed.
        let nodes = outputs.len();
        let mut fail = vec![0u32; nodes];
        let mut queue = VecDeque::new();
        for slot in next.iter_mut().take(256) {
            match *slot {
                MISSING => *slot = 0,
                t => {
                    fail[t as usize] = 0;
                    queue.push_back(t as usize);
                }
            }
        }
        while let Some(s) = queue.pop_front() {
            let f = fail[s] as usize;
            if !outputs[f].is_empty() {
                let inherited = outputs[f].clone();
                outputs[s].extend(inherited);
            }
            for b in 0..256 {
                let via_fail = next[f * 256 + b];
                let slot = s * 256 + b;
                match next[slot] {
                    MISSING => next[slot] = via_fail,
                    t => {
                        fail[t as usize] = via_fail;
                        queue.push_back(t as usize);
                    }
                }
            }
        }
        let mut distinct: Vec<u32> = self.literals.iter().map(|&(pid, _)| pid).collect();
        distinct.sort_unstable();
        distinct.dedup();
        for out in &mut outputs {
            out.sort_unstable();
            out.dedup();
            out.shrink_to_fit();
        }
        // Escape-set skip for the start state (the same trick the
        // fused lazy DFA uses for quiescent states): a raw byte stays
        // at the root iff its folded transition loops there, and the
        // root never carries outputs (empty literals are refused), so
        // runs of stay bytes can be jumped without stepping.
        let mut start_stay = [0u64; 4];
        for b in 0..256usize {
            let folded = (b as u8).to_ascii_lowercase() as usize;
            if next[folded] == 0 {
                start_stay[b >> 6] |= 1 << (b & 63);
            }
        }
        MultiLiteral {
            next,
            outputs,
            distinct_patterns: distinct.len(),
            start_stay,
        }
    }
}

/// A built multi-literal automaton. See the module docs for the
/// matching semantics.
#[derive(Clone)]
pub struct MultiLiteral {
    /// Dense DFA transitions: `next[state * 256 + folded_byte]`.
    next: Vec<u32>,
    /// Per state: the pattern ids completed at (or suffix-reachable
    /// from) that state.
    outputs: Vec<Vec<u32>>,
    /// Distinct pattern ids carried by the automaton; lets scans stop
    /// early once every pattern has been seen.
    distinct_patterns: usize,
    /// Bytes whose (folded) transition keeps the scan at the start
    /// state, as a 256-bit bitmap over *raw* byte values; scans jump
    /// over runs of them.
    start_stay: [u64; 4],
}

impl MultiLiteral {
    /// Number of DFA states (diagnostic; bounded by total literal
    /// bytes + 1).
    pub fn state_count(&self) -> usize {
        self.outputs.len()
    }

    /// Number of distinct pattern ids the automaton can report.
    pub fn pattern_count(&self) -> usize {
        self.distinct_patterns
    }

    /// Scans `hay` once, inserting into `found` every pattern id with
    /// at least one literal occurrence (ASCII case-insensitive).
    /// Returns the number of ids newly inserted. Bits already set in
    /// `found` are preserved (callers pre-seed always-run patterns).
    pub fn scan_into(&self, hay: &[u8], found: &mut CandidateSet) -> usize {
        let mut state = 0usize;
        let mut new = 0usize;
        let mut i = 0usize;
        while i < hay.len() {
            if state == 0 {
                // Parked at the root: jump to the next byte that can
                // start any literal. Root outputs are empty, so the
                // skipped bytes observably do nothing.
                i = skip_dense(hay, i, &self.start_stay);
                if i >= hay.len() {
                    break;
                }
            }
            state = self.next[state * 256 + hay[i].to_ascii_lowercase() as usize] as usize;
            let out = &self.outputs[state];
            if !out.is_empty() {
                for &pid in out {
                    if found.insert(pid as usize) {
                        new += 1;
                    }
                }
                // Every pattern is already a candidate: the rest of
                // the haystack cannot change the answer.
                if new == self.distinct_patterns {
                    break;
                }
            }
            i += 1;
        }
        new
    }

    /// Convenience wrapper allocating a fresh [`CandidateSet`] over
    /// `universe` ids.
    pub fn scan(&self, hay: &[u8], universe: usize) -> CandidateSet {
        let mut found = CandidateSet::new(universe);
        self.scan_into(hay, &mut found);
        found
    }
}

impl std::fmt::Debug for MultiLiteral {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MultiLiteral")
            .field("states", &self.state_count())
            .field("patterns", &self.distinct_patterns)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn engine(lits: &[(u32, &str)]) -> MultiLiteral {
        let mut b = MultiLiteralBuilder::new();
        for &(pid, lit) in lits {
            b.add(pid, lit.as_bytes());
        }
        b.build()
    }

    fn found_ids(e: &MultiLiteral, hay: &[u8], universe: usize) -> Vec<usize> {
        e.scan(hay, universe).iter().collect()
    }

    #[test]
    fn reports_each_pattern_with_a_literal_present() {
        let e = engine(&[(0, "select"), (1, "union"), (2, "sleep")]);
        assert_eq!(found_ids(&e, b"1 UNION SELECT 2", 3), vec![0, 1]);
        assert_eq!(found_ids(&e, b"nothing here", 3), Vec::<usize>::new());
        assert_eq!(found_ids(&e, b"sleep(5)", 3), vec![2]);
    }

    #[test]
    fn case_folding_matches_prefilter_semantics() {
        let e = engine(&[(0, "SeLeCt")]);
        assert_eq!(found_ids(&e, b"sElEcT", 1), vec![0]);
        assert_eq!(found_ids(&e, b"selec", 1), Vec::<usize>::new());
    }

    #[test]
    fn overlapping_and_nested_literals() {
        // "he"/"she"/"his"/"hers": the classic AC example; also one
        // literal a suffix of another.
        let e = engine(&[(0, "he"), (1, "she"), (2, "his"), (3, "hers")]);
        assert_eq!(found_ids(&e, b"ushers", 4), vec![0, 1, 3]);
        assert_eq!(found_ids(&e, b"history", 4), vec![2]);
    }

    #[test]
    fn multiple_literals_per_pattern_and_shared_ids() {
        let e = engine(&[(7, "insert"), (7, "delete"), (3, "drop")]);
        assert_eq!(found_ids(&e, b"DELETE FROM t", 8), vec![7]);
        assert_eq!(found_ids(&e, b"drop table; insert", 8), vec![3, 7]);
        assert_eq!(e.pattern_count(), 2);
    }

    #[test]
    fn pre_seeded_bits_are_preserved() {
        let e = engine(&[(1, "xyz")]);
        let mut found = CandidateSet::new(4);
        found.insert(2);
        let new = e.scan_into(b"xyzzy", &mut found);
        assert_eq!(new, 1);
        assert_eq!(found.iter().collect::<Vec<_>>(), vec![1, 2]);
    }

    #[test]
    fn empty_builder_and_empty_haystack() {
        let e = MultiLiteralBuilder::new().build();
        assert_eq!(e.pattern_count(), 0);
        assert_eq!(found_ids(&e, b"anything", 4), Vec::<usize>::new());
        let e = engine(&[(0, "a")]);
        assert_eq!(found_ids(&e, b"", 1), Vec::<usize>::new());
    }

    #[test]
    fn candidate_set_basics() {
        let mut s = CandidateSet::new(130);
        assert!(s.insert(0));
        assert!(s.insert(129));
        assert!(!s.insert(129));
        assert!(s.contains(129));
        assert!(!s.contains(64));
        assert_eq!(s.count(), 2);
        assert_eq!(s.iter().collect::<Vec<_>>(), vec![0, 129]);
        s.reset(10);
        assert_eq!(s.count(), 0);
        assert_eq!(s.universe(), 10);
    }

    #[test]
    fn agrees_with_per_pattern_prefilters() {
        use crate::parser::{parse, Flags};
        use crate::Prefilter;
        // Patterns with derivable literal requirements: the automaton
        // must flag exactly the patterns whose own prefilter passes.
        let pats = [
            r"union\s+select",
            "insert|update|delete",
            r"or\s+sleep\s*\(",
            "benchmark",
        ];
        let pfs: Vec<Prefilter> = pats
            .iter()
            .map(|p| Prefilter::from_ast(&parse(p, Flags::default()).unwrap()).unwrap())
            .collect();
        let mut b = MultiLiteralBuilder::new();
        for (i, pf) in pfs.iter().enumerate() {
            for lit in pf.literals() {
                b.add(i as u32, lit);
            }
        }
        let e = b.build();
        let hays: &[&[u8]] = &[
            b"id=1 UNION SELECT pass",
            b"UPDATE t SET x=1",
            b"or sleep(9)",
            b"BENCHMARK(1000,md5(1))",
            b"page=2&sort=asc",
            b"",
        ];
        for hay in hays {
            let got = e.scan(hay, pats.len());
            for (i, pf) in pfs.iter().enumerate() {
                assert_eq!(
                    got.contains(i),
                    pf.maybe_matches(hay),
                    "pattern {i} on {hay:?}"
                );
            }
        }
    }
}
