//! Abstract syntax tree for the pattern language.
//!
//! The grammar is the pragmatic subset of PCRE used by IDS signatures:
//! literals, character classes, `.`, alternation, non-capturing and
//! capturing groups, greedy and lazy quantifiers (`*`, `+`, `?`,
//! `{m}`, `{m,}`, `{m,n}`), the `^`/`$` text anchors, and the inline
//! flags `i` (ASCII case insensitivity) and `s` (`.` matches `\n`).

use crate::classes::ClassSet;

/// A parsed regular expression node.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Ast {
    /// Matches the empty string.
    Empty,
    /// Matches one exact byte.
    Literal(u8),
    /// Matches one byte inside (or outside, if negated at parse time)
    /// a set of byte ranges.
    Class(ClassSet),
    /// `.` — any byte; whether `\n` is included is recorded so the
    /// compiler does not need to consult parse-time flags.
    Dot {
        /// True when the enclosing context had the `s` flag set.
        matches_newline: bool,
    },
    /// A sequence of sub-expressions matched one after another.
    Concat(Vec<Ast>),
    /// Ordered alternation; earlier branches are preferred.
    Alternate(Vec<Ast>),
    /// A bounded or unbounded repetition of a sub-expression.
    Repeat {
        /// The repeated sub-expression.
        ast: Box<Ast>,
        /// Minimum number of repetitions.
        min: u32,
        /// Maximum number of repetitions; `None` means unbounded.
        max: Option<u32>,
        /// Greedy repetitions prefer more iterations, lazy ones fewer.
        greedy: bool,
    },
    /// A group. Capture indices are parsed and preserved for
    /// diagnostics, but this engine reports whole-match spans only.
    Group(Box<Ast>),
    /// `^` — start of the haystack.
    StartText,
    /// `$` — end of the haystack.
    EndText,
    /// `\b` — a word/non-word boundary.
    WordBoundary,
    /// `\B` — the complement of `\b`.
    NotWordBoundary,
}

impl Ast {
    /// Returns true when the node can match the empty string.
    pub fn is_nullable(&self) -> bool {
        match self {
            Ast::Empty
            | Ast::StartText
            | Ast::EndText
            | Ast::WordBoundary
            | Ast::NotWordBoundary => true,
            Ast::Literal(_) | Ast::Class(_) | Ast::Dot { .. } => false,
            Ast::Concat(parts) => parts.iter().all(Ast::is_nullable),
            Ast::Alternate(parts) => parts.iter().any(Ast::is_nullable),
            Ast::Repeat { ast, min, .. } => *min == 0 || ast.is_nullable(),
            Ast::Group(inner) => inner.is_nullable(),
        }
    }

    /// A rough node count used to enforce compiled-size limits before
    /// repetition expansion blows a pattern up.
    pub fn weight(&self) -> usize {
        match self {
            Ast::Empty | Ast::Literal(_) | Ast::Class(_) | Ast::Dot { .. } => 1,
            Ast::StartText | Ast::EndText | Ast::WordBoundary | Ast::NotWordBoundary => 1,
            Ast::Concat(parts) | Ast::Alternate(parts) => {
                1 + parts.iter().map(Ast::weight).sum::<usize>()
            }
            Ast::Repeat { ast, max, min, .. } => {
                let reps = max.unwrap_or(*min + 1).max(1) as usize;
                1 + ast.weight().saturating_mul(reps)
            }
            Ast::Group(inner) => 1 + inner.weight(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nullability_of_leaves() {
        assert!(Ast::Empty.is_nullable());
        assert!(Ast::StartText.is_nullable());
        assert!(!Ast::Literal(b'a').is_nullable());
        assert!(!Ast::Dot {
            matches_newline: true
        }
        .is_nullable());
    }

    #[test]
    fn nullability_of_repeat() {
        let star = Ast::Repeat {
            ast: Box::new(Ast::Literal(b'a')),
            min: 0,
            max: None,
            greedy: true,
        };
        assert!(star.is_nullable());
        let plus = Ast::Repeat {
            ast: Box::new(Ast::Literal(b'a')),
            min: 1,
            max: None,
            greedy: true,
        };
        assert!(!plus.is_nullable());
    }

    #[test]
    fn nullability_of_composites() {
        let cat = Ast::Concat(vec![Ast::Empty, Ast::Literal(b'x')]);
        assert!(!cat.is_nullable());
        let alt = Ast::Alternate(vec![Ast::Literal(b'x'), Ast::Empty]);
        assert!(alt.is_nullable());
    }

    #[test]
    fn weight_grows_with_repetition() {
        let lit = Ast::Literal(b'a');
        let rep = Ast::Repeat {
            ast: Box::new(lit.clone()),
            min: 10,
            max: Some(100),
            greedy: true,
        };
        assert!(rep.weight() > lit.weight() * 50);
    }
}
