//! Pattern compilation errors.

use std::fmt;

/// Why a pattern failed to compile.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ErrorKind {
    /// The pattern ended in the middle of a construct.
    UnexpectedEof,
    /// A `)` had no matching `(`.
    UnbalancedCloseParen,
    /// A `(` had no matching `)`.
    UnbalancedOpenParen,
    /// A `[` had no matching `]`.
    UnclosedClass,
    /// An empty character class `[]` or `[^]` matching nothing useful.
    EmptyClass,
    /// A class range such as `z-a` with reversed endpoints.
    InvalidClassRange,
    /// An unknown or unsupported escape sequence.
    InvalidEscape(char),
    /// `\x` not followed by two hex digits.
    InvalidHexEscape,
    /// A repetition like `{3,1}` or `{}` that cannot be satisfied.
    InvalidRepetition,
    /// A quantifier with nothing to repeat, e.g. a pattern starting
    /// with `*`.
    RepetitionMissingTarget,
    /// An unknown inline flag, e.g. `(?x)`.
    UnknownFlag(char),
    /// The compiled program would exceed the configured size limit.
    ProgramTooBig {
        /// Estimated number of instructions.
        estimated: usize,
        /// The configured limit.
        limit: usize,
    },
}

/// An error produced while parsing or compiling a pattern.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error {
    kind: ErrorKind,
    /// Byte offset into the pattern where the problem was detected.
    position: usize,
}

impl Error {
    pub(crate) fn new(kind: ErrorKind, position: usize) -> Error {
        Error { kind, position }
    }

    /// The category of failure.
    pub fn kind(&self) -> &ErrorKind {
        &self.kind
    }

    /// Byte offset into the pattern where the problem was detected.
    pub fn position(&self) -> usize {
        self.position
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let msg = match &self.kind {
            ErrorKind::UnexpectedEof => "unexpected end of pattern".to_string(),
            ErrorKind::UnbalancedCloseParen => "unmatched `)`".to_string(),
            ErrorKind::UnbalancedOpenParen => "unmatched `(`".to_string(),
            ErrorKind::UnclosedClass => "unclosed character class".to_string(),
            ErrorKind::EmptyClass => "character class matches no byte".to_string(),
            ErrorKind::InvalidClassRange => "invalid character class range".to_string(),
            ErrorKind::InvalidEscape(c) => format!("invalid escape sequence `\\{c}`"),
            ErrorKind::InvalidHexEscape => "`\\x` must be followed by two hex digits".to_string(),
            ErrorKind::InvalidRepetition => "invalid repetition bounds".to_string(),
            ErrorKind::RepetitionMissingTarget => "quantifier has nothing to repeat".to_string(),
            ErrorKind::UnknownFlag(c) => format!("unknown inline flag `{c}`"),
            ErrorKind::ProgramTooBig { estimated, limit } => format!(
                "compiled program too big: estimated {estimated} instructions, limit {limit}"
            ),
        };
        write!(f, "{} at pattern offset {}", msg, self.position)
    }
}

impl std::error::Error for Error {}
