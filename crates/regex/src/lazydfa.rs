//! Lazily-determinized execution of a fused multi-pattern NFA.
//!
//! [`FusedSet::scan_into`] makes exactly one left-to-right pass over
//! the haystack and inserts into a [`CandidateSet`] the id of every
//! pattern with at least one match — the *exact* match set, so the
//! caller only needs per-pattern VMs to recover match counts for
//! patterns already known to match.
//!
//! # Determinization with deferred closure
//!
//! A DFA state is the sorted set of NFA program counters sitting
//! *after* the consuming instructions taken so far — before epsilon
//! closure — plus two context bits: whether the previous byte was a
//! word byte and whether we are at position 0. Closure is deferred to
//! transition time, when the *next* byte is known, so the assertions
//! `^`, `$`, `\b`, `\B` resolve from context instead of forcing a
//! state split per assertion outcome. A `\b`-gated match ending at
//! position `p` only becomes visible while consuming byte `p` (or at
//! end of input), which is why match ids are attached to transitions
//! rather than states.
//!
//! Unanchored search re-seeds every pattern's entry point inside every
//! transition closure; the per-context closure of those entry points
//! is computed once and cached ([`DfaCache::roots`]), so a transition
//! miss does not re-walk all patterns.
//!
//! # Bounded memory
//!
//! States, transitions, and match sets live in a caller-owned
//! [`DfaCache`] so gateway worker threads reuse one allocation across
//! requests. The cache holds at most `state_limit` states; on
//! overflow it is flushed wholesale (the in-flight scan keeps going —
//! its current state is re-interned) so adversarial state-explosion
//! inputs degrade to re-determinization, never to unbounded memory.
//! A cache bound to one [`FusedSet`] (by build token) resets itself
//! when handed another, which makes hot reload safe by construction.

use crate::accel::{skip_dense, skip_sparse};
use crate::multilit::CandidateSet;
use crate::nfa::{word_byte, FusedSet, MultiNfa};
use crate::program::Inst;
use std::collections::HashMap;

/// Sentinel for a not-yet-computed transition. Must be tested before
/// [`RICH`]: it has the rich bit set but is not a rich index.
const UNKNOWN: u32 = u32::MAX;

/// Transition-word flag: the low 31 bits index [`DfaCache::rich`]
/// (transitions that report matches) instead of naming a state.
const RICH: u32 = 1 << 31;

/// State flag: the previously consumed byte was a word byte.
const PREV_WORD: u8 = 1;

/// State flag: no byte consumed yet (haystack position 0).
const AT_START: u8 = 2;

/// Acceleration verdict slot: not yet analyzed. New states start here
/// and are only analyzed once a scan actually takes a self-loop on
/// them, so states the automaton merely passes through never pay the
/// per-class analysis.
const ACCEL_PENDING: u32 = 0;

/// Acceleration verdict slot: analyzed, not accelerable.
const ACCEL_NONE: u32 = 1;

/// Acceleration verdict slots `>= ACCEL_BASE` index
/// [`DfaCache::accel_data`] at `slot - ACCEL_BASE`.
const ACCEL_BASE: u32 = 2;

/// Minimum stay-set size (bytes) for the dense bitmap accelerator;
/// below it, skipping can't beat the plain loop often enough to repay
/// the per-entry setup.
const DENSE_MIN_STAY: u32 = 32;

/// How a quiescent state's stay set is scanned: the two escape-set
/// shapes of `crate::accel`.
#[derive(Debug, Clone)]
enum AccelKind {
    /// At most 3 concrete escape bytes → SWAR scan.
    Sparse { escapes: [u8; 3], n: u8 },
    /// Large stay set → 256-bit stay bitmap.
    Dense { stay: [u64; 4] },
}

/// A cached acceleration plan for one quiescent state.
///
/// Skipping consumes bytes without stepping them, which mutates the
/// `PREV_WORD` context bit; rather than restrict stay bytes to one
/// word-ness (which would cap skips at single word/non-word runs),
/// the plan covers the *pair* of flag variants of the pending set and
/// recomputes `prev_word` from the last skipped byte: `resume[w]` is
/// the interned state for `(pending, prev_word = w)`, one of which is
/// the analyzed state itself.
#[derive(Debug, Clone)]
struct Accel {
    kind: AccelKind,
    resume: [u32; 2],
    /// Match ids every stay transition emits (constant across stay
    /// bytes and context variants — e.g. a nullable pattern matching
    /// at every position). Inserted once per skip; since the scan
    /// reports set membership, once equals once-per-byte.
    emits: Box<[u32]>,
}

/// Identity of a DFA state: pending (pre-closure) pcs, sorted and
/// deduplicated, plus the context flags closure will need.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
struct StateKey {
    set: Box<[u32]>,
    flags: u8,
}

/// Cached epsilon closure of all pattern entry points under one
/// assertion context.
#[derive(Debug, Clone, Default)]
struct RootClosure {
    /// Consuming instructions reachable from the entries.
    consuming: Vec<u32>,
    /// Patterns that match the empty string at such a position.
    matched: Vec<u32>,
}

/// Assertion context for one closure computation.
#[derive(Debug, Clone, Copy)]
struct Ctx {
    at_start: bool,
    at_end: bool,
    prev_word: bool,
    next_word: bool,
}

impl Ctx {
    /// Index into [`DfaCache::roots`] (at_end contexts are not cached
    /// there — end-of-input closures are memoized per state instead).
    fn root_slot(self) -> usize {
        (self.at_start as usize) << 2 | (self.prev_word as usize) << 1 | self.next_word as usize
    }
}

/// Per-scan counters, returned by [`FusedSet::scan_into`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FusedScanStats {
    /// Haystack length. Of these, `bytes - skipped` were stepped
    /// through the transition table one at a time; `skipped` were
    /// jumped over by quiescent-state acceleration.
    pub bytes: u64,
    /// Bytes skipped by accelerated states (never individually
    /// stepped, so they can neither hit nor miss the cache).
    pub skipped: u64,
    /// Pattern ids newly inserted into the output set by this scan.
    pub matched: u32,
    /// Transitions that were not cached and had to be determinized.
    pub misses: u32,
    /// Cache flushes forced by the state limit during this scan.
    pub flushes: u32,
    /// States resident in the cache after the scan.
    pub states: u32,
    /// States with a cached acceleration plan after the scan.
    pub accel_states: u32,
}

impl FusedScanStats {
    /// Fraction of *stepped* transitions (`bytes - skipped`) served
    /// from the cache, clamped to `[0, 1]` — a mid-scan flush both
    /// discards transitions already paid for and re-counts their
    /// re-determinization, so the raw quotient is not self-limiting.
    /// A warmed-up cache sits at 1.0; `None` for empty haystacks.
    pub fn hit_ratio(&self) -> Option<f64> {
        if self.bytes == 0 {
            return None;
        }
        let steps = self.bytes - self.skipped;
        if steps == 0 {
            // Every byte was skipped: nothing was asked of the table.
            return Some(1.0);
        }
        Some((1.0 - self.misses as f64 / steps as f64).clamp(0.0, 1.0))
    }

    /// Fraction of haystack bytes jumped over by acceleration, in
    /// `[0, 1]`; `None` for empty haystacks.
    pub fn skip_ratio(&self) -> Option<f64> {
        if self.bytes == 0 {
            return None;
        }
        Some(self.skipped as f64 / self.bytes as f64)
    }
}

/// Reusable lazy-DFA working memory: the interned states, the
/// transition table, memoized end-of-input match sets, cached root
/// closures, and closure scratch space.
///
/// A cache belongs to whichever [`FusedSet`] last scanned with it
/// (tracked by the set's build token) and silently resets when a
/// different set — e.g. a hot-reloaded automaton — shows up.
#[derive(Debug, Default)]
pub struct DfaCache {
    /// Build token of the owning [`FusedSet`]; 0 = unbound.
    owner: u64,
    /// Interned state keys; index = state id.
    states: Vec<StateKey>,
    /// Reverse map from key to state id.
    map: HashMap<StateKey, u32>,
    /// `trans[id * class_count + class]`: [`UNKNOWN`], a plain next
    /// state id, or `RICH | index` into [`DfaCache::rich`].
    trans: Vec<u32>,
    /// Match-reporting transitions: (next state id, matched pids).
    rich: Vec<(u32, Box<[u32]>)>,
    /// Per-state memoized end-of-input match sets.
    eoi: Vec<Option<Box<[u32]>>>,
    /// Per-state acceleration verdicts: [`ACCEL_PENDING`],
    /// [`ACCEL_NONE`], or `ACCEL_BASE + index` into
    /// [`DfaCache::accel_data`]. Indexed like [`DfaCache::states`],
    /// cleared whenever states are (bind and flush), so verdicts can
    /// never outlive the state numbering they were computed for.
    accel: Vec<u32>,
    /// Escape-set plans of accelerated states.
    accel_data: Vec<Accel>,
    /// Root closures per assertion context (see [`Ctx::root_slot`]).
    roots: [Option<RootClosure>; 8],
    /// Representative byte per equivalence class.
    reps: Vec<u8>,
    /// Number of byte equivalence classes.
    class_count: usize,
    /// Closure visit marks, one per program instruction.
    seen: Vec<u64>,
    /// Current closure generation for [`DfaCache::seen`].
    generation: u64,
    /// Closure work stack.
    stack: Vec<u32>,
    /// Scratch: consuming pcs of the pending-set closure.
    consuming_scratch: Vec<u32>,
    /// Scratch: matched pids of the pending-set closure.
    matched_scratch: Vec<u32>,
    /// Lifetime flush count (telemetry).
    total_flushes: u64,
}

impl DfaCache {
    /// An empty, unbound cache.
    pub fn new() -> DfaCache {
        DfaCache::default()
    }

    /// Number of states currently interned.
    pub fn state_count(&self) -> usize {
        self.states.len()
    }

    /// Cache flushes since creation.
    pub fn total_flushes(&self) -> u64 {
        self.total_flushes
    }

    /// Number of currently resident states with an acceleration plan.
    pub fn accelerated_states(&self) -> usize {
        self.accel_data.len()
    }

    /// Binds the cache to `set`, dropping everything derived from a
    /// previous owner.
    fn bind(&mut self, set: &FusedSet) {
        self.owner = set.token;
        self.states.clear();
        self.map.clear();
        self.trans.clear();
        self.rich.clear();
        self.eoi.clear();
        self.accel.clear();
        self.accel_data.clear();
        self.roots = Default::default();
        let classes = &set.nfa.classes;
        self.class_count = classes.count as usize;
        self.reps.clear();
        self.reps.resize(self.class_count, 0);
        let mut filled = vec![false; self.class_count];
        for b in 0..256u16 {
            let c = classes.map[b as usize] as usize;
            if !filled[c] {
                filled[c] = true;
                self.reps[c] = b as u8;
            }
        }
        self.seen.clear();
        self.seen.resize(set.nfa.prog.len(), 0);
        self.generation = 0;
        self.intern(start_key());
    }

    /// Looks up or inserts `key`; does not enforce the state limit.
    fn intern(&mut self, key: StateKey) -> u32 {
        if let Some(&id) = self.map.get(&key) {
            return id;
        }
        let id = self.states.len() as u32;
        self.states.push(key.clone());
        self.map.insert(key, id);
        self.trans
            .extend(std::iter::repeat_n(UNKNOWN, self.class_count));
        self.eoi.push(None);
        self.accel.push(ACCEL_PENDING);
        id
    }

    /// Drops all states and transitions (keeps root closures — they
    /// depend only on the owning program) and re-interns the start
    /// state as id 0.
    fn flush(&mut self) {
        self.states.clear();
        self.map.clear();
        self.trans.clear();
        self.rich.clear();
        self.eoi.clear();
        // Acceleration verdicts are keyed by state id; flushing
        // renumbers states, so verdicts go with them. Surviving
        // states re-earn their plan the next time a scan self-loops
        // on them (the analysis itself is deterministic, so the
        // re-derived plan is identical).
        self.accel.clear();
        self.accel_data.clear();
        self.total_flushes += 1;
        self.intern(start_key());
    }
}

/// The state every scan begins in: nothing pending, position 0.
fn start_key() -> StateKey {
    StateKey {
        set: Box::new([]),
        flags: AT_START,
    }
}

/// Epsilon closure from each pc in `start` under `ctx`, over `nfa`'s
/// program. Reachable consuming instructions go to `consuming`;
/// pattern ids whose `MatchId` is reachable go to `matched`. `seen`
/// marks (against `generation`) prevent revisits; output order is
/// arbitrary — callers canonicalize.
#[allow(clippy::too_many_arguments)]
fn close_collect(
    nfa: &MultiNfa,
    start: &[u32],
    ctx: Ctx,
    seen: &mut [u64],
    generation: u64,
    stack: &mut Vec<u32>,
    consuming: &mut Vec<u32>,
    matched: &mut Vec<u32>,
) {
    stack.clear();
    // Reverse keeps low-pc-first exploration; order is irrelevant for
    // containment but makes traces easier to read.
    stack.extend(start.iter().rev());
    while let Some(pc) = stack.pop() {
        let slot = &mut seen[pc as usize];
        if *slot == generation {
            continue;
        }
        *slot = generation;
        match &nfa.prog.insts[pc as usize] {
            Inst::Jmp(t) => stack.push(*t),
            Inst::Split(a, b) => {
                stack.push(*b);
                stack.push(*a);
            }
            Inst::StartText => {
                if ctx.at_start {
                    stack.push(pc + 1);
                }
            }
            Inst::EndText => {
                if ctx.at_end {
                    stack.push(pc + 1);
                }
            }
            Inst::WordBoundary => {
                if ctx.prev_word != ctx.next_word {
                    stack.push(pc + 1);
                }
            }
            Inst::NotWordBoundary => {
                if ctx.prev_word == ctx.next_word {
                    stack.push(pc + 1);
                }
            }
            Inst::MatchId(pid) => matched.push(*pid),
            // Fused programs terminate every pattern with `MatchId`;
            // a bare `Match` would mean a builder bug.
            Inst::Match => debug_assert!(false, "Inst::Match in fused program"),
            Inst::Byte(_) | Inst::Class(_) | Inst::Any | Inst::AnyNoNewline => consuming.push(pc),
        }
    }
}

/// Whether the consuming instruction at `pc` accepts byte `b`.
fn accepts(nfa: &MultiNfa, pc: u32, b: u8) -> bool {
    match &nfa.prog.insts[pc as usize] {
        Inst::Byte(x) => *x == b,
        Inst::Class(idx) => nfa.prog.classes[*idx as usize].contains(b),
        Inst::Any => true,
        Inst::AnyNoNewline => b != b'\n',
        _ => unreachable!("non-consuming pc in consuming list"),
    }
}

impl FusedSet {
    /// Scans `hay` once and inserts every matching pattern id into
    /// `out`. Returns per-scan statistics. `cache` may be fresh,
    /// warm, or previously bound to a different set — all are
    /// handled; reuse one per worker thread for peak throughput.
    pub fn scan_into(
        &self,
        hay: &[u8],
        cache: &mut DfaCache,
        out: &mut CandidateSet,
    ) -> FusedScanStats {
        if cache.owner != self.token {
            cache.bind(self);
        }
        let mut stats = FusedScanStats {
            bytes: hay.len() as u64,
            ..FusedScanStats::default()
        };
        let nc = cache.class_count;
        let accel_on = self.accelerate;
        let mut cur = 0u32;
        let mut i = 0usize;
        while i < hay.len() {
            if accel_on {
                let slot = cache.accel[cur as usize];
                if slot >= ACCEL_BASE {
                    let plan = &cache.accel_data[(slot - ACCEL_BASE) as usize];
                    let j = match &plan.kind {
                        AccelKind::Sparse { escapes, n } => {
                            skip_sparse(hay, i, escapes, *n as usize)
                        }
                        AccelKind::Dense { stay } => skip_dense(hay, i, stay),
                    };
                    if j > i {
                        // Safe because every skipped byte parks both
                        // flag variants of the pending set and emits
                        // the same constant match set (see
                        // `compute_accel`); the only context the skip
                        // can change is `PREV_WORD`, which is
                        // recomputed here from the last skipped byte.
                        // The escape byte itself is stepped normally
                        // below.
                        for &pid in plan.emits.iter() {
                            if out.insert(pid as usize) {
                                stats.matched += 1;
                            }
                        }
                        cur = plan.resume[word_byte(hay[j - 1]) as usize];
                        stats.skipped += (j - i) as u64;
                        i = j;
                        if i >= hay.len() {
                            break;
                        }
                    }
                }
            }
            let b = hay[i];
            let class = self.nfa.classes.map[b as usize] as usize;
            let mut t = cache.trans[cur as usize * nc + class];
            if t == UNKNOWN {
                stats.misses += 1;
                t = self.compute_transition(cache, cur, class, &mut stats);
            }
            let next = if t & RICH != 0 {
                let (next, pids) = &cache.rich[(t & !RICH) as usize];
                for &pid in pids.iter() {
                    if out.insert(pid as usize) {
                        stats.matched += 1;
                    }
                }
                *next
            } else {
                t
            };
            // A taken self-loop is the trigger for (lazy) acceleration
            // analysis: it is the cheapest reliable signal that the
            // automaton actually parks here. After a mid-transition
            // flush `cur` names a renumbered (or vacated) slot — the
            // bounds check below keeps the index safe, and a spurious
            // trigger merely analyzes whichever state now holds that
            // id, which is still a correct (if unsolicited) verdict
            // for that state.
            if accel_on
                && next == cur
                && (cur as usize) < cache.accel.len()
                && cache.accel[cur as usize] == ACCEL_PENDING
            {
                self.analyze_accel(cache, cur);
            }
            cur = next;
            i += 1;
        }
        self.emit_eoi(cache, cur, out, &mut stats);
        stats.states = cache.states.len() as u32;
        stats.accel_states = cache.accel_data.len() as u32;
        stats
    }

    /// Determinizes one transition: from state `cur` on byte class
    /// `class`, returning the encoded transition word (also stored in
    /// the table). May flush the cache, which renumbers `cur` — the
    /// caller continues from the word's *next* state, which is valid
    /// either way.
    fn compute_transition(
        &self,
        cache: &mut DfaCache,
        cur: u32,
        class: usize,
        stats: &mut FusedScanStats,
    ) -> u32 {
        let src = cache.states[cur as usize].clone();
        let rep = cache.reps[class];
        let ctx = Ctx {
            at_start: src.flags & AT_START != 0,
            at_end: false,
            prev_word: src.flags & PREV_WORD != 0,
            next_word: word_byte(rep),
        };
        self.ensure_root(cache, ctx);

        cache.generation += 1;
        cache.consuming_scratch.clear();
        cache.matched_scratch.clear();
        close_collect(
            &self.nfa,
            &src.set,
            ctx,
            &mut cache.seen,
            cache.generation,
            &mut cache.stack,
            &mut cache.consuming_scratch,
            &mut cache.matched_scratch,
        );

        let root = cache.roots[ctx.root_slot()]
            .as_ref()
            .expect("root closure just ensured");
        let mut succ: Vec<u32> =
            Vec::with_capacity(cache.consuming_scratch.len() + root.consuming.len());
        for &pc in cache.consuming_scratch.iter().chain(root.consuming.iter()) {
            if accepts(&self.nfa, pc, rep) {
                succ.push(pc + 1);
            }
        }
        succ.sort_unstable();
        succ.dedup();
        let mut matched: Vec<u32> =
            Vec::with_capacity(cache.matched_scratch.len() + root.matched.len());
        matched.extend_from_slice(&cache.matched_scratch);
        matched.extend_from_slice(&root.matched);
        matched.sort_unstable();
        matched.dedup();

        let next_key = StateKey {
            set: succ.into_boxed_slice(),
            flags: if ctx.next_word { PREV_WORD } else { 0 },
        };

        // Enforce the state bound before interning anything new. A
        // flush invalidates `cur`, so the source state is re-interned
        // right after the start state.
        let mut cur = cur;
        if !cache.map.contains_key(&next_key) && cache.states.len() >= self.state_limit {
            cache.flush();
            stats.flushes += 1;
            cur = cache.intern(src);
        }
        let next = cache.intern(next_key);

        let enc = if matched.is_empty() {
            next
        } else {
            let idx = cache.rich.len() as u32;
            debug_assert!(idx & RICH == 0, "rich table overflow");
            cache.rich.push((next, matched.into_boxed_slice()));
            RICH | idx
        };
        cache.trans[cur as usize * cache.class_count + class] = enc;
        enc
    }

    /// Analyzes state `id` for acceleration and records the verdict
    /// in `cache.accel[id]`. Interns nothing, so state numbering is
    /// stable across the call.
    fn analyze_accel(&self, cache: &mut DfaCache, id: u32) {
        let verdict = self.compute_accel(cache, id);
        cache.accel[id as usize] = match verdict {
            None => ACCEL_NONE,
            Some(plan) => {
                let idx = cache.accel_data.len() as u32;
                cache.accel_data.push(plan);
                ACCEL_BASE + idx
            }
        };
    }

    /// Decides whether state `id` is quiescent and, if so, derives its
    /// escape-set plan.
    ///
    /// A byte class *stays* iff, from **both** `PREV_WORD` variants of
    /// the state's pending set, its transition is a parked loop:
    ///
    /// 1. the successor pending set equals the state's own pending
    ///    set (so the automaton provably sits on the variant pair for
    ///    the whole skipped run — each step lands on the variant
    ///    selected by the byte's word-ness, never anywhere else); and
    /// 2. the match ids on the transition are one *constant* set `M`,
    ///    identical for both variants and for every stay class
    ///    (typically empty; a nullable pattern contributes itself at
    ///    every position). `M` is emitted once per skip, which under
    ///    set-membership reporting equals emitting it per byte. A
    ///    context-*dependent* match (e.g. `\b`-gated) disqualifies
    ///    the class. `$`-gated matches only fire in the end-of-input
    ///    closure, which the skip never bypasses: it stops *at* the
    ///    end and `emit_eoi` still runs from the parked state.
    ///
    /// Requiring both variants is what makes skipping safe for
    /// `\b`/`\B` even though it mutates `PREV_WORD`: whichever
    /// word-ness sequence the skipped bytes have, every intermediate
    /// transition was verified, and the scan resumes in the variant
    /// matching the last skipped byte, so the escape byte closes
    /// under context bits identical to the unskipped scan's.
    ///
    /// Everything else is an escape byte. The per-class test is exact
    /// because byte classes are refined on word-ness and on every
    /// instruction's ranges, so all bytes of a class behave alike.
    fn compute_accel(&self, cache: &mut DfaCache, id: u32) -> Option<Accel> {
        let src = cache.states[id as usize].clone();
        if src.flags & AT_START != 0 {
            // Consuming any byte clears AT_START, so the start state
            // can never strictly self-loop.
            return None;
        }
        let nc = cache.class_count;
        let mut stay_class = [false; 256];
        let mut succ: Vec<u32> = Vec::new();
        // M of the class under examination: per-variant then merged.
        let mut emitted: [Vec<u32>; 2] = [Vec::new(), Vec::new()];
        // M established by the stay classes accepted so far.
        let mut emits: Option<Vec<u32>> = None;
        // Index loop, not an iterator over `cache.reps`: the body
        // re-borrows `cache` mutably (ensure_root / close_collect).
        #[allow(clippy::needless_range_loop)]
        'class: for class in 0..nc {
            let rep = cache.reps[class];
            for prev_word in [false, true] {
                let ctx = Ctx {
                    at_start: false,
                    at_end: false,
                    prev_word,
                    next_word: word_byte(rep),
                };
                self.ensure_root(cache, ctx);
                cache.generation += 1;
                cache.consuming_scratch.clear();
                cache.matched_scratch.clear();
                close_collect(
                    &self.nfa,
                    &src.set,
                    ctx,
                    &mut cache.seen,
                    cache.generation,
                    &mut cache.stack,
                    &mut cache.consuming_scratch,
                    &mut cache.matched_scratch,
                );
                let root = cache.roots[ctx.root_slot()]
                    .as_ref()
                    .expect("root closure just ensured");
                let m = &mut emitted[prev_word as usize];
                m.clear();
                m.extend_from_slice(&cache.matched_scratch);
                m.extend_from_slice(&root.matched);
                m.sort_unstable();
                m.dedup();
                succ.clear();
                for &pc in cache.consuming_scratch.iter().chain(root.consuming.iter()) {
                    if accepts(&self.nfa, pc, rep) {
                        succ.push(pc + 1);
                    }
                }
                succ.sort_unstable();
                succ.dedup();
                if succ[..] != src.set[..] {
                    continue 'class; // leaves the pending set: escape
                }
            }
            if emitted[0] != emitted[1] {
                continue 'class; // context-dependent match (\b-gated): escape
            }
            match &emits {
                // The first accepted stay class establishes M …
                None => emits = Some(emitted[0].clone()),
                // … which every later one must reproduce exactly.
                Some(m) if *m != emitted[0] => continue 'class,
                Some(_) => {}
            }
            stay_class[class] = true;
        }
        // Expand classes to a concrete byte-level stay bitmap and
        // escape list.
        let mut stay = [0u64; 4];
        let mut escapes = [0u8; 3];
        let mut n_escapes = 0usize;
        let mut n_stay = 0u32;
        for b in 0..256usize {
            if stay_class[self.nfa.classes.map[b] as usize] {
                stay[b >> 6] |= 1 << (b & 63);
                n_stay += 1;
            } else if n_escapes < 3 {
                escapes[n_escapes] = b as u8;
                n_escapes += 1;
            } else {
                n_escapes = 4;
            }
        }
        if n_stay < DENSE_MIN_STAY && n_escapes > 3 {
            return None;
        }
        // Resuming after a skip re-derives PREV_WORD from the last
        // skipped byte, so both flag variants of the pending set must
        // be interned states. Interning here never renumbers existing
        // states; if the cache is at its bound and the sibling is
        // absent, decline to accelerate rather than overshoot the
        // memory limit (a later flush re-opens the opportunity).
        let mut resume = [0u32; 2];
        for w in [false, true] {
            let key = StateKey {
                set: src.set.clone(),
                flags: if w { PREV_WORD } else { 0 },
            };
            resume[w as usize] = match cache.map.get(&key) {
                Some(&sid) => sid,
                None if cache.states.len() >= self.state_limit => return None,
                None => cache.intern(key),
            };
        }
        let kind = if (1..=3).contains(&n_escapes) {
            AccelKind::Sparse {
                escapes,
                n: n_escapes as u8,
            }
        } else {
            // Covers the huge-stay-set shape and the degenerate
            // no-escape state (all-ones bitmap: jump straight to end
            // of input).
            AccelKind::Dense { stay }
        };
        Some(Accel {
            kind,
            resume,
            emits: emits.unwrap_or_default().into_boxed_slice(),
        })
    }

    /// Emits the matches visible at end of input from state `cur`
    /// (memoized per state).
    fn emit_eoi(
        &self,
        cache: &mut DfaCache,
        cur: u32,
        out: &mut CandidateSet,
        stats: &mut FusedScanStats,
    ) {
        if cache.eoi[cur as usize].is_none() {
            let src = cache.states[cur as usize].clone();
            let ctx = Ctx {
                at_start: src.flags & AT_START != 0,
                at_end: true,
                prev_word: src.flags & PREV_WORD != 0,
                next_word: false,
            };
            cache.generation += 1;
            cache.consuming_scratch.clear();
            cache.matched_scratch.clear();
            // Pending set and root entries close in one walk; the
            // consuming output is irrelevant at end of input.
            let mut starts: Vec<u32> = Vec::with_capacity(src.set.len() + self.nfa.entries.len());
            starts.extend_from_slice(&src.set);
            starts.extend_from_slice(&self.nfa.entries);
            close_collect(
                &self.nfa,
                &starts,
                ctx,
                &mut cache.seen,
                cache.generation,
                &mut cache.stack,
                &mut cache.consuming_scratch,
                &mut cache.matched_scratch,
            );
            let mut matched = std::mem::take(&mut cache.matched_scratch);
            matched.sort_unstable();
            matched.dedup();
            cache.eoi[cur as usize] = Some(matched.into_boxed_slice());
        }
        let pids = cache.eoi[cur as usize].as_ref().expect("just memoized");
        for &pid in pids.iter() {
            if out.insert(pid as usize) {
                stats.matched += 1;
            }
        }
    }

    /// Computes and caches the root closure for `ctx` if absent.
    fn ensure_root(&self, cache: &mut DfaCache, ctx: Ctx) {
        let slot = ctx.root_slot();
        if cache.roots[slot].is_some() {
            return;
        }
        cache.generation += 1;
        let mut rc = RootClosure::default();
        close_collect(
            &self.nfa,
            &self.nfa.entries,
            ctx,
            &mut cache.seen,
            cache.generation,
            &mut cache.stack,
            &mut rc.consuming,
            &mut rc.matched,
        );
        rc.matched.sort_unstable();
        rc.matched.dedup();
        cache.roots[slot] = Some(rc);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::nfa::FusedSetBuilder;
    use crate::{FuseOutcome, Regex};

    /// Patterns exercising every assertion and instruction kind the
    /// DFA must agree with the Pike VM on.
    const LIBRARY: &[&str] = &[
        r"union\s+select",
        r"\bor\b",
        r"\bselect\b",
        r"[0-9]+",
        r"^admin",
        r"--$",
        r"'[^']*'",
        r"a*",
        r"\Bx",
        r"^$",
        r"wait\s*for\s*delay",
        r"(and|or)\s+\d+\s*=\s*\d+",
    ];

    fn build(patterns: &[&str]) -> (FusedSet, Vec<Regex>) {
        let mut b = FusedSetBuilder::new();
        let mut regexes = Vec::new();
        for (i, pat) in patterns.iter().enumerate() {
            assert_eq!(
                b.add(i as u32, pat, true).unwrap(),
                FuseOutcome::Fused,
                "library pattern {pat:?} must fuse"
            );
            regexes.push(
                Regex::builder()
                    .case_insensitive(true)
                    .prefilter(false)
                    .build(pat)
                    .unwrap(),
            );
        }
        (b.build().unwrap(), regexes)
    }

    fn fused_ids(set: &FusedSet, cache: &mut DfaCache, hay: &[u8]) -> Vec<usize> {
        let mut out = CandidateSet::new(set.pattern_count());
        set.scan_into(hay, cache, &mut out);
        out.iter().collect()
    }

    fn vm_ids(regexes: &[Regex], hay: &[u8]) -> Vec<usize> {
        regexes
            .iter()
            .enumerate()
            .filter(|(_, re)| re.is_match(hay))
            .map(|(i, _)| i)
            .collect()
    }

    #[test]
    fn fused_matches_equal_per_pattern_vm() {
        let (set, regexes) = build(LIBRARY);
        let mut cache = DfaCache::new();
        let hays: &[&[u8]] = &[
            b"",
            b"1 UNION SELECT password",
            b"1 or 1=1",
            b"corridor",
            b"admin' --",
            b"xadmin",
            b"and 12 = 12",
            b"'quoted' OR 'a'='a'",
            b"WAIT FOR DELAY '0:0:5'",
            b"or",
            b"--",
            b"ADMIN",
            b"no sql here at all!",
            b"\n",
            b"select\nunion select",
        ];
        for hay in hays {
            assert_eq!(
                fused_ids(&set, &mut cache, hay),
                vm_ids(&regexes, hay),
                "haystack {:?}",
                String::from_utf8_lossy(hay)
            );
        }
    }

    #[test]
    fn second_scan_is_fully_cached() {
        let (set, _) = build(LIBRARY);
        let mut cache = DfaCache::new();
        let hay = b"id=1 UNION SELECT name FROM users -- or 1=1";
        let first = fused_ids(&set, &mut cache, hay);
        let mut out = CandidateSet::new(set.pattern_count());
        let stats = set.scan_into(hay, &mut cache, &mut out);
        assert_eq!(stats.misses, 0, "warm cache must not determinize");
        assert_eq!(stats.hit_ratio(), Some(1.0));
        let second: Vec<usize> = out.iter().collect();
        assert_eq!(first, second);
    }

    #[test]
    fn eviction_keeps_results_exact_under_state_explosion() {
        // Patterns with overlapping classes breed many distinct
        // pending sets; a tiny limit forces mid-scan flushes.
        let pats: &[&str] = &[
            r"[a-m]{3,8}z",
            r"[g-t]{2,9}y",
            r"[b-r]{4,7}x",
            r"\b[a-z]+\d\b",
            r"(ab|ba|aa|bb){2,6}c",
        ];
        let mut b = FusedSetBuilder::new().state_limit(8);
        let mut regexes = Vec::new();
        for (i, pat) in pats.iter().enumerate() {
            assert_eq!(b.add(i as u32, pat, true).unwrap(), FuseOutcome::Fused);
            regexes.push(
                Regex::builder()
                    .case_insensitive(true)
                    .prefilter(false)
                    .build(pat)
                    .unwrap(),
            );
        }
        let set = b.build().unwrap();
        let mut cache = DfaCache::new();
        // A pseudo-random-ish alphabet soup long enough to explode.
        let hay: Vec<u8> = (0u32..4096)
            .map(|i| {
                let x = i.wrapping_mul(2654435761) >> 24;
                b'a' + (x % 26) as u8
            })
            .collect();
        let mut out = CandidateSet::new(set.pattern_count());
        let stats = set.scan_into(&hay, &mut cache, &mut out);
        assert!(stats.flushes > 0, "state limit 8 must force flushes");
        assert!(
            cache.state_count() <= set.state_limit(),
            "cache exceeded its bound: {} > {}",
            cache.state_count(),
            set.state_limit()
        );
        let got: Vec<usize> = out.iter().collect();
        assert_eq!(got, vm_ids(&regexes, &hay), "flushing changed results");
    }

    #[test]
    fn cache_rebinds_across_sets() {
        let (a, a_regexes) = build(&[r"\bor\b", "admin"]);
        let (b, b_regexes) = build(&["drop", r"\btable\b"]);
        let mut cache = DfaCache::new();
        let hay = b"or drop table admin";
        // Alternate owners through one cache; each scan must match
        // its own set's semantics, never the previous owner's.
        for _ in 0..3 {
            assert_eq!(fused_ids(&a, &mut cache, hay), vm_ids(&a_regexes, hay));
            assert_eq!(fused_ids(&b, &mut cache, hay), vm_ids(&b_regexes, hay));
        }
    }

    #[test]
    fn anchors_and_empty_haystacks() {
        let (set, regexes) = build(&["^$", "^a", "b$", r"^c$"]);
        let mut cache = DfaCache::new();
        for hay in [&b""[..], b"a", b"b", b"c", b"ab", b"ba", b"cc", b"a\nb"] {
            assert_eq!(
                fused_ids(&set, &mut cache, hay),
                vm_ids(&regexes, hay),
                "haystack {hay:?}"
            );
        }
    }

    #[test]
    fn nullable_pattern_matches_everywhere() {
        let (set, _) = build(&["z*"]);
        let mut cache = DfaCache::new();
        assert_eq!(fused_ids(&set, &mut cache, b""), vec![0]);
        assert_eq!(fused_ids(&set, &mut cache, b"qqq"), vec![0]);
    }

    /// Builds the same patterns twice, acceleration on and off, and a
    /// cache for each.
    fn build_ab(patterns: &[&str]) -> (FusedSet, FusedSet) {
        let mut on = FusedSetBuilder::new();
        let mut off = FusedSetBuilder::new().accelerate(false);
        for (i, pat) in patterns.iter().enumerate() {
            assert_eq!(on.add(i as u32, pat, true).unwrap(), FuseOutcome::Fused);
            assert_eq!(off.add(i as u32, pat, true).unwrap(), FuseOutcome::Fused);
        }
        (on.build().unwrap(), off.build().unwrap())
    }

    #[test]
    fn acceleration_skips_bytes_and_preserves_results() {
        let (on, off) = build_ab(LIBRARY);
        let (mut ca, mut cb) = (DfaCache::new(), DfaCache::new());
        // A long benign-ish haystack: big quiescent runs, no matches
        // for most patterns.
        let mut hay = Vec::new();
        for _ in 0..64 {
            hay.extend_from_slice(b"page=2&sort=asc&term=winter jackets ");
        }
        let mut out_on = CandidateSet::new(on.pattern_count());
        let mut out_off = CandidateSet::new(off.pattern_count());
        // Two passes: cold then warm (skipping mostly engages warm,
        // after self-loops have been observed).
        for pass in 0..2 {
            out_on.reset(on.pattern_count());
            out_off.reset(off.pattern_count());
            let sa = on.scan_into(&hay, &mut ca, &mut out_on);
            let sb = off.scan_into(&hay, &mut cb, &mut out_off);
            let a: Vec<usize> = out_on.iter().collect();
            let b: Vec<usize> = out_off.iter().collect();
            assert_eq!(a, b, "acceleration changed the match set");
            assert_eq!(sb.skipped, 0, "accel-off scan must not skip");
            if pass == 1 {
                assert!(
                    sa.skipped > 0,
                    "warm accelerated scan should skip bytes: {sa:?}"
                );
                assert!(sa.accel_states > 0);
                assert!(sa.skip_ratio().unwrap() > 0.0);
                assert_eq!(ca.accelerated_states(), sa.accel_states as usize);
            }
        }
    }

    #[test]
    fn sparse_acceleration_engages_on_single_pattern_sets() {
        // One literal pattern: the parked state's escape set is just
        // the first letter's two cases → the SWAR path.
        let (on, off) = build_ab(&["union"]);
        let (mut ca, mut cb) = (DfaCache::new(), DfaCache::new());
        let hay = vec![b'a'; 8192];
        for _ in 0..2 {
            let mut out = CandidateSet::new(1);
            let sa = on.scan_into(&hay, &mut ca, &mut out);
            let sb = off.scan_into(&hay, &mut cb, &mut out);
            assert_eq!(out.iter().count(), 0);
            assert_eq!(sb.skipped, 0);
            if sa.skipped > 0 {
                // Nearly the whole haystack should go in one jump.
                assert!(sa.skipped > hay.len() as u64 / 2, "{sa:?}");
            }
        }
        // Matches still found mid-soup with skipping active.
        let mut hay = vec![b'x'; 4096];
        hay.extend_from_slice(b"UNION");
        hay.extend(std::iter::repeat_n(b'x', 4096));
        let mut out = CandidateSet::new(1);
        on.scan_into(&hay, &mut ca, &mut out);
        assert_eq!(out.iter().collect::<Vec<_>>(), vec![0]);
    }

    #[test]
    fn acceleration_agrees_with_vm_across_word_boundaries() {
        // \b-heavy patterns: skipping mutates PREV_WORD, which the
        // resume rule must reconstruct exactly.
        let pats: &[&str] = &[r"\bor\b", r"\Bx", r"\bselect\b", r"union\s+select"];
        let (set, regexes) = build(pats);
        let (on, off) = build_ab(pats);
        let _ = set;
        let (mut ca, mut cb) = (DfaCache::new(), DfaCache::new());
        let hays: &[&[u8]] = &[
            b"pporppp or ppp",
            b"aaaaaaaaaaaaaaaaaaaaor",
            b"or aaaaaaaaaaaaaaaaaaaa",
            b"   or   ",
            b"xxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxx",
            b"tax tax tax tax tax tax tax tax x",
            b"selectselectselect select done",
            b"no keywords here just words and spaces and 123 456",
        ];
        for hay in hays {
            for _ in 0..2 {
                let mut a = CandidateSet::new(on.pattern_count());
                let mut b = CandidateSet::new(off.pattern_count());
                on.scan_into(hay, &mut ca, &mut a);
                off.scan_into(hay, &mut cb, &mut b);
                assert_eq!(
                    a.iter().collect::<Vec<_>>(),
                    b.iter().collect::<Vec<_>>(),
                    "haystack {:?}",
                    String::from_utf8_lossy(hay)
                );
                assert_eq!(
                    a.iter().collect::<Vec<_>>(),
                    vm_ids(&regexes, hay),
                    "vs VM on {:?}",
                    String::from_utf8_lossy(hay)
                );
            }
        }
    }

    #[test]
    fn hit_ratio_is_clamped_under_tiny_state_limit() {
        // Satellite regression: mid-scan flushes discard and re-pay
        // transitions; whatever the miss accounting does, the ratio
        // must stay a ratio.
        let pats: &[&str] = &[
            r"[a-m]{3,8}z",
            r"[g-t]{2,9}y",
            r"[b-r]{4,7}x",
            r"\b[a-z]+\d\b",
            r"(ab|ba|aa|bb){2,6}c",
        ];
        let mut b = FusedSetBuilder::new().state_limit(1);
        for (i, pat) in pats.iter().enumerate() {
            assert_eq!(b.add(i as u32, pat, true).unwrap(), FuseOutcome::Fused);
        }
        let set = b.build().unwrap();
        let mut cache = DfaCache::new();
        let hay: Vec<u8> = (0u32..512)
            .map(|i| {
                let x = i.wrapping_mul(2654435761) >> 24;
                b'a' + (x % 26) as u8
            })
            .collect();
        for _ in 0..3 {
            let mut out = CandidateSet::new(set.pattern_count());
            let stats = set.scan_into(&hay, &mut cache, &mut out);
            assert!(stats.flushes > 0, "tiny limit must force flushes");
            let ratio = stats.hit_ratio().expect("non-empty haystack");
            assert!(
                (0.0..=1.0).contains(&ratio),
                "hit_ratio escaped [0,1]: {ratio} ({stats:?})"
            );
            let skip = stats.skip_ratio().expect("non-empty haystack");
            assert!((0.0..=1.0).contains(&skip));
        }
    }

    #[test]
    fn accel_survives_flush_and_rebind() {
        let (on, _) = build_ab(&["union"]);
        let mut cache = DfaCache::new();
        let hay = vec![b'a'; 1024];
        let mut out = CandidateSet::new(1);
        on.scan_into(&hay, &mut cache, &mut out);
        on.scan_into(&hay, &mut cache, &mut out);
        assert!(cache.accelerated_states() > 0);
        // Rebinding to a different set drops the plans with the
        // states they index.
        let (other, _) = build_ab(&["select"]);
        other.scan_into(&hay, &mut cache, &mut out);
        let mut out2 = CandidateSet::new(1);
        let mut hay2 = hay.clone();
        hay2.extend_from_slice(b"select");
        other.scan_into(&hay2, &mut cache, &mut out2);
        assert_eq!(out2.iter().collect::<Vec<_>>(), vec![0]);
    }
}
