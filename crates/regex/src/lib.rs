//! A from-scratch, byte-level regular expression engine built for
//! intrusion-detection workloads.
//!
//! The engine supports the pragmatic PCRE subset used by IDS and WAF
//! signatures — literals, character classes, `.`, alternation,
//! groups, greedy/lazy quantifiers, `^`/`$`, `\d`/`\s`/`\w` (and
//! negations), `\xHH` escapes, and the inline flags `i` and `s` —
//! and compiles patterns to a prioritized Pike VM that runs in time
//! linear in the haystack, immune to backtracking blow-ups.
//!
//! Two features are specific to the IDS use case:
//!
//! * [`Regex::count_all`] counts non-overlapping matches, the
//!   operation pSigene's feature extraction is built on (the paper
//!   adds an equivalent `count_all()` to the Bro IDS).
//! * A mandatory-literal prefilter skips the VM entirely for the
//!   (very common) haystacks that cannot possibly match.
//! * [`MultiLiteral`] lifts the prefilter to the *set* level: an
//!   ASCII-case-folded Aho–Corasick automaton over every pattern's
//!   required literals answers "which of these N patterns could
//!   match?" in one haystack pass instead of N.
//! * [`FusedSet`] goes further: a whole pattern library fused into
//!   one multi-pattern NFA, executed as a lazily-determinized DFA
//!   ([`FusedSet::scan_into`]), reports the *exact* set of matching
//!   patterns — not candidates — in one haystack pass, so per-pattern
//!   VMs only run to count matches for patterns known to match.
//!
//! # Example
//!
//! ```
//! use psigene_regex::Regex;
//!
//! let re = Regex::builder()
//!     .case_insensitive(true)
//!     .build(r"union\s+(all\s+)?select")
//!     .unwrap();
//! assert!(re.is_match(b"id=1 UNION SELECT password FROM users"));
//! assert_eq!(re.count_all(b"union select 1; UNION ALL SELECT 2"), 2);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod accel;
mod ast;
mod classes;
mod compiler;
mod error;
mod lazydfa;
mod multilit;
mod nfa;
mod parser;
mod prefilter;
mod program;
mod vm;

pub use crate::classes::{ByteRange, ClassSet};
pub use crate::error::{Error, ErrorKind};
pub use crate::lazydfa::{DfaCache, FusedScanStats};
pub use crate::multilit::{CandidateSet, MultiLiteral, MultiLiteralBuilder};
pub use crate::nfa::{FuseOutcome, FusedSet, FusedSetBuilder};
pub use crate::prefilter::Prefilter;
pub use crate::vm::VmCache;

use crate::program::Program;
use crate::vm::Span;

/// A successful match: byte offsets into the haystack.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Match {
    start: usize,
    end: usize,
}

impl Match {
    /// Start offset (inclusive).
    pub fn start(&self) -> usize {
        self.start
    }

    /// End offset (exclusive).
    pub fn end(&self) -> usize {
        self.end
    }

    /// Length of the matched span in bytes.
    pub fn len(&self) -> usize {
        self.end - self.start
    }

    /// True for zero-width matches.
    pub fn is_empty(&self) -> bool {
        self.start == self.end
    }

    /// The matched bytes of `hay`.
    pub fn as_bytes<'h>(&self, hay: &'h [u8]) -> &'h [u8] {
        &hay[self.start..self.end]
    }
}

/// Configures and builds a [`Regex`].
#[derive(Debug, Clone)]
pub struct RegexBuilder {
    case_insensitive: bool,
    dot_matches_newline: bool,
    size_limit: usize,
    prefilter: bool,
}

impl Default for RegexBuilder {
    fn default() -> RegexBuilder {
        RegexBuilder {
            case_insensitive: false,
            dot_matches_newline: false,
            size_limit: compiler::DEFAULT_SIZE_LIMIT,
            prefilter: true,
        }
    }
}

impl RegexBuilder {
    /// Creates a builder with default settings (case-sensitive,
    /// `.` excludes `\n`, prefilter enabled).
    pub fn new() -> RegexBuilder {
        RegexBuilder::default()
    }

    /// Enables ASCII case-insensitive matching for the whole pattern.
    pub fn case_insensitive(mut self, yes: bool) -> RegexBuilder {
        self.case_insensitive = yes;
        self
    }

    /// Makes `.` match `\n` as well.
    pub fn dot_matches_newline(mut self, yes: bool) -> RegexBuilder {
        self.dot_matches_newline = yes;
        self
    }

    /// Caps the compiled program size (instructions). Counted
    /// repetitions expand, so this bounds memory and compile time.
    pub fn size_limit(mut self, limit: usize) -> RegexBuilder {
        self.size_limit = limit;
        self
    }

    /// Enables or disables the mandatory-literal prefilter.
    pub fn prefilter(mut self, yes: bool) -> RegexBuilder {
        self.prefilter = yes;
        self
    }

    /// Compiles `pattern` with this configuration.
    pub fn build(&self, pattern: &str) -> Result<Regex, Error> {
        let flags = parser::Flags {
            case_insensitive: self.case_insensitive,
            dot_matches_newline: self.dot_matches_newline,
        };
        let ast = parser::parse(pattern, flags)?;
        let prog = compiler::compile(&ast, self.size_limit)?;
        let prefilter = if self.prefilter {
            Prefilter::from_ast(&ast)
        } else {
            None
        };
        Ok(Regex {
            pattern: pattern.to_string(),
            prog,
            prefilter,
        })
    }
}

/// A compiled regular expression.
///
/// Matching operates on `&[u8]` haystacks; IDS payloads are raw bytes
/// and need no UTF-8 guarantees.
#[derive(Debug, Clone)]
pub struct Regex {
    pattern: String,
    prog: Program,
    prefilter: Option<Prefilter>,
}

impl Regex {
    /// Compiles `pattern` with default settings.
    pub fn new(pattern: &str) -> Result<Regex, Error> {
        RegexBuilder::new().build(pattern)
    }

    /// Returns a fresh [`RegexBuilder`].
    pub fn builder() -> RegexBuilder {
        RegexBuilder::new()
    }

    /// The original pattern text.
    pub fn pattern(&self) -> &str {
        &self.pattern
    }

    /// The derived prefilter, if one exists.
    pub fn prefilter(&self) -> Option<&Prefilter> {
        self.prefilter.as_ref()
    }

    /// Number of compiled VM instructions (a size/complexity proxy).
    pub fn program_len(&self) -> usize {
        self.prog.len()
    }

    /// True when the pattern matches anywhere in `hay`.
    pub fn is_match(&self, hay: &[u8]) -> bool {
        self.find(hay).is_some()
    }

    /// Finds the leftmost match.
    pub fn find(&self, hay: &[u8]) -> Option<Match> {
        self.find_at(hay, 0)
    }

    /// Finds the leftmost match starting at or after `start`.
    pub fn find_at(&self, hay: &[u8], start: usize) -> Option<Match> {
        if start == 0 {
            if let Some(pf) = &self.prefilter {
                if !pf.maybe_matches(hay) {
                    return None;
                }
            }
        }
        let mut cache = vm::VmCache::new();
        self.find_at_with(hay, start, &mut cache)
    }

    /// Like [`Regex::find_at`] but reusing caller-provided scratch
    /// space; use this in match loops.
    pub fn find_at_with(&self, hay: &[u8], start: usize, cache: &mut vm::VmCache) -> Option<Match> {
        let skip = self.prefilter.as_ref().and_then(|pf| pf.prefix_skip());
        vm::find_at(&self.prog, skip, hay, start, cache)
            .map(|Span { start, end }| Match { start, end })
    }

    /// Iterates over non-overlapping matches, leftmost-first.
    pub fn find_iter<'r, 'h>(&'r self, hay: &'h [u8]) -> Matches<'r, 'h> {
        Matches {
            re: self,
            hay,
            next_start: 0,
            cache: vm::VmCache::new(),
            prefilter_passed: self
                .prefilter
                .as_ref()
                .map(|pf| pf.maybe_matches(hay))
                .unwrap_or(true),
        }
    }

    /// Counts non-overlapping matches in `hay`.
    ///
    /// This is the primitive pSigene features are built on: every
    /// feature value is `count_all(feature_pattern, request)`.
    pub fn count_all(&self, hay: &[u8]) -> usize {
        let mut cache = vm::VmCache::new();
        self.count_all_with(hay, &mut cache)
    }

    /// Like [`Regex::count_all`] but reusing caller-provided scratch
    /// space; use this when counting many patterns over one payload
    /// (the feature-extraction hot path). Identical semantics to
    /// `count_all`: non-overlapping, leftmost-first, zero-width
    /// matches advance the scan position by one.
    pub fn count_all_with(&self, hay: &[u8], cache: &mut vm::VmCache) -> usize {
        if let Some(pf) = &self.prefilter {
            if !pf.maybe_matches(hay) {
                return 0;
            }
        }
        self.count_all_prefiltered_with(hay, cache)
    }

    /// [`Regex::count_all_with`] minus the up-front prefilter gate,
    /// for callers that already *know* the pattern matches `hay`
    /// (e.g. the fused lazy-DFA scan reported it). The prefilter is
    /// sound — it never rejects a matching haystack — so skipping it
    /// cannot change the count; it only saves a redundant haystack
    /// traversal. On haystacks that do not match, this is strictly
    /// slower than `count_all_with`, never wrong.
    pub fn count_all_prefiltered_with(&self, hay: &[u8], cache: &mut vm::VmCache) -> usize {
        let mut n = 0;
        let mut next_start = 0;
        while next_start <= hay.len() {
            let Some(m) = self.find_at_with(hay, next_start, cache) else {
                break;
            };
            n += 1;
            // Zero-width matches must still advance the scan position.
            next_start = if m.end == m.start { m.end + 1 } else { m.end };
        }
        n
    }
}

/// Iterator over non-overlapping matches.
#[derive(Debug)]
pub struct Matches<'r, 'h> {
    re: &'r Regex,
    hay: &'h [u8],
    next_start: usize,
    cache: vm::VmCache,
    prefilter_passed: bool,
}

impl Iterator for Matches<'_, '_> {
    type Item = Match;

    fn next(&mut self) -> Option<Match> {
        if !self.prefilter_passed || self.next_start > self.hay.len() {
            return None;
        }
        let m = self
            .re
            .find_at_with(self.hay, self.next_start, &mut self.cache)?;
        // Zero-width matches must still advance the scan position.
        self.next_start = if m.end == m.start { m.end + 1 } else { m.end };
        Some(m)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn count_all_non_overlapping() {
        let re = Regex::new("aa").unwrap();
        assert_eq!(re.count_all(b"aaaa"), 2);
        assert_eq!(re.count_all(b"aaa"), 1);
        assert_eq!(re.count_all(b""), 0);
    }

    #[test]
    fn count_all_zero_width() {
        let re = Regex::new("a*").unwrap();
        // hay = a a b a: "aa" at 0..2, "" at 2..2, "a" at 3..4, "" at 4..4
        // (same segmentation as Python's re.findall and the regex crate).
        assert_eq!(re.count_all(b"aaba"), 4);
    }

    #[test]
    fn case_insensitive_matching() {
        let re = Regex::builder()
            .case_insensitive(true)
            .build("select")
            .unwrap();
        assert!(re.is_match(b"SeLeCt * from t"));
        assert!(!re.is_match(b"selec"));
    }

    #[test]
    fn inline_flag_matches_ids_style_rules() {
        let re = Regex::new(r"(?i:union\s+select)").unwrap();
        assert!(re.is_match(b"1 UNION SELECT 2"));
    }

    #[test]
    fn find_iter_positions() {
        let re = Regex::new(r"\d+").unwrap();
        let spans: Vec<(usize, usize)> = re
            .find_iter(b"a12b345c6")
            .map(|m| (m.start(), m.end()))
            .collect();
        assert_eq!(spans, vec![(1, 3), (4, 7), (8, 9)]);
    }

    #[test]
    fn real_world_sqli_signatures() {
        // Patterns in the styles the paper catalogues (Tables II & III).
        let cases: &[(&str, &[u8], bool)] = &[
            (r"(?i)\)?;", b"abc); drop", true),
            (r"(?i)in\s*?\(+\s*?select", b"WHERE x IN (SELECT y)", true),
            (
                r"(?i)<=>|r?like|sounds\s+like|regex",
                b"1 SOUNDS LIKE 2",
                true,
            ),
            (r"=[-0-9%]*", b"id=-15%", true),
            (r"(?i)ch(a)?r\s*?\(\s*?\d", b"concat(char(58))", true),
            (
                r"(?i)union\s+(all\s+)?select",
                b"1 union all select 2",
                true,
            ),
            (
                r"(?i)union\s+(all\s+)?select",
                b"community selection",
                false,
            ),
        ];
        for (pat, hay, want) in cases {
            let re = Regex::new(pat).unwrap();
            assert_eq!(re.is_match(hay), *want, "pattern {pat:?} on {hay:?}");
        }
    }

    #[test]
    fn prefilter_does_not_change_results() {
        let pat = r"(?i)select.+from";
        let with = Regex::builder().prefilter(true).build(pat).unwrap();
        let without = Regex::builder().prefilter(false).build(pat).unwrap();
        let hays: &[&[u8]] = &[
            b"SELECT a FROM b",
            b"select from",
            b"nothing",
            b"selec t fro m",
        ];
        for hay in hays {
            assert_eq!(with.is_match(hay), without.is_match(hay), "{hay:?}");
            assert_eq!(with.count_all(hay), without.count_all(hay), "{hay:?}");
        }
    }

    #[test]
    fn match_accessors() {
        let re = Regex::new("bc").unwrap();
        let m = re.find(b"abcd").unwrap();
        assert_eq!((m.start(), m.end(), m.len()), (1, 3, 2));
        assert!(!m.is_empty());
        assert_eq!(m.as_bytes(b"abcd"), b"bc");
    }

    #[test]
    fn invalid_patterns_error() {
        assert!(Regex::new("(a").is_err());
        assert!(Regex::new("[z-a]").is_err());
    }

    #[test]
    fn oversized_pattern_rejected() {
        let err = Regex::builder()
            .size_limit(64)
            .build("(abcdefgh){100}")
            .unwrap_err();
        assert!(matches!(err.kind(), ErrorKind::ProgramTooBig { .. }));
    }
}
