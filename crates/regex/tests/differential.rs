//! Differential tests: our engine vs. the `regex` crate (dev-only
//! oracle). The `regex` crate uses leftmost-first semantics like ours,
//! so `find` spans must agree on the supported pattern subset.

use proptest::prelude::*;
use psigene_regex::Regex as OurRegex;
use regex::bytes::RegexBuilder as OracleBuilder;

fn oracle(pat: &str, ci: bool) -> regex::bytes::Regex {
    OracleBuilder::new(pat)
        .unicode(false)
        .case_insensitive(ci)
        .build()
        .expect("oracle compile")
}

fn ours(pat: &str, ci: bool) -> OurRegex {
    OurRegex::builder()
        .case_insensitive(ci)
        .build(pat)
        .expect("our compile")
}

fn check_agreement(pat: &str, ci: bool, hay: &[u8]) {
    let a = ours(pat, ci);
    let b = oracle(pat, ci);
    let am = a.find(hay).map(|m| (m.start(), m.end()));
    let bm = b.find(hay).map(|m| (m.start(), m.end()));
    assert_eq!(am, bm, "pattern {pat:?} (ci={ci}) on {hay:?}");
    let ac: Vec<_> = a.find_iter(hay).map(|m| (m.start(), m.end())).collect();
    let bc: Vec<_> = b.find_iter(hay).map(|m| (m.start(), m.end())).collect();
    assert_eq!(ac, bc, "find_iter for {pat:?} (ci={ci}) on {hay:?}");
}

/// Patterns representative of IDS signature styles.
const PATTERNS: &[&str] = &[
    r"union\s+select",
    r"union\s+(all\s+)?select",
    r"in\s*?\(+\s*?select",
    r"\)?;",
    r"=[-0-9%]*",
    r"<=>|r?like|sounds\s+like|regex",
    r"[?&][^\s\x00-\x37|]+?=",
    r"ch(a)?r\s*?\(\s*?\d",
    r"(\d+)\s*(union|or|and)\s*(\d+)",
    r"'\s*or\s*'?\d",
    r"--",
    r"/\*.*\*/",
    r"[a-z]+[0-9]{2,4}",
    r"(abc|ab|a)+",
    r"x*y+z?",
    r"^select",
    r"from$",
    r"a{2,5}b{0,3}",
    r"\w+\s*=\s*\w+",
    r"[^a-z]+",
    r"\bunion\b",
    r"\bselect\b|\bfrom\b",
    r"\B\d+",
];

#[test]
fn fixed_patterns_on_crafted_haystacks() {
    let hays: &[&[u8]] = &[
        b"",
        b"a",
        b"id=1 union select 1,2,3",
        b"id=1 UNION ALL SELECT null,null",
        b"x' or '1'='1",
        b"?q=hello&id=42",
        b"select * from users where id in (select id from admins)",
        b"/* comment */ --",
        b"aaaaabbbbbccccc",
        b"xyzzy xxyyzz",
        b"char(58) CHAR ( 5 )",
        b"===---%%%000",
        b"\x00\x01\x02binary\xff",
        b"sounds like rlike like regex <=>",
    ];
    for pat in PATTERNS {
        for hay in hays {
            check_agreement(pat, false, hay);
            check_agreement(pat, true, hay);
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn random_haystacks_agree(hay in proptest::collection::vec(any::<u8>(), 0..80)) {
        for pat in PATTERNS {
            check_agreement(pat, false, &hay);
            check_agreement(pat, true, &hay);
        }
    }

    #[test]
    fn sql_like_haystacks_agree(
        hay in "[ -~]{0,60}",
    ) {
        for pat in PATTERNS {
            check_agreement(pat, false, hay.as_bytes());
            check_agreement(pat, true, hay.as_bytes());
        }
    }

    #[test]
    fn random_simple_patterns_agree(
        pat in r"[abc01]([abc01.]|\\d|\\s){0,8}",
        hay in "[abc01 .x]{0,40}",
    ) {
        // Only test when both engines accept the pattern.
        let ours_re = OurRegex::new(&pat);
        let oracle_re = OracleBuilder::new(&pat).unicode(false).build();
        if let (Ok(a), Ok(b)) = (ours_re, oracle_re) {
            let am = a.find(hay.as_bytes()).map(|m| (m.start(), m.end()));
            let bm = b.find(hay.as_bytes()).map(|m| (m.start(), m.end()));
            prop_assert_eq!(am, bm, "pattern {:?} on {:?}", pat, hay);
        }
    }

    #[test]
    fn count_all_never_panics(
        pat_idx in 0usize..PATTERNS.len(),
        hay in proptest::collection::vec(any::<u8>(), 0..200),
    ) {
        let re = ours(PATTERNS[pat_idx], true);
        let _ = re.count_all(&hay);
    }
}

mod fused {
    //! The fused lazy DFA vs. the `regex` crate oracle: the matched
    //! pattern-id set of one fused scan must equal the set of
    //! patterns whose individual `is_match` succeeds — on arbitrary
    //! bytes, with and without state-cache pressure.

    use super::{oracle, PATTERNS};
    use proptest::prelude::*;
    use psigene_regex::{CandidateSet, DfaCache, FuseOutcome, FusedSet, FusedSetBuilder};

    fn build_fused(ci: bool, state_limit: Option<usize>) -> (FusedSet, Vec<regex::bytes::Regex>) {
        let mut b = FusedSetBuilder::new();
        if let Some(limit) = state_limit {
            b = b.state_limit(limit);
        }
        let mut oracles = Vec::new();
        for (i, pat) in PATTERNS.iter().enumerate() {
            assert_eq!(
                b.add(i as u32, pat, ci).expect("valid pattern"),
                FuseOutcome::Fused,
                "differential pattern {pat:?} must fuse"
            );
            oracles.push(oracle(pat, ci));
        }
        (b.build().expect("non-empty"), oracles)
    }

    fn check(set: &FusedSet, oracles: &[regex::bytes::Regex], cache: &mut DfaCache, hay: &[u8]) {
        let mut out = CandidateSet::new(set.pattern_count());
        set.scan_into(hay, cache, &mut out);
        let got: Vec<usize> = out.iter().collect();
        let want: Vec<usize> = oracles
            .iter()
            .enumerate()
            .filter(|(_, re)| re.is_match(hay))
            .map(|(i, _)| i)
            .collect();
        assert_eq!(got, want, "fused vs oracle on {hay:?}");
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(256))]

        #[test]
        fn fused_set_equals_oracle_on_random_bytes(
            hay in proptest::collection::vec(any::<u8>(), 0..120),
        ) {
            for ci in [false, true] {
                let (set, oracles) = build_fused(ci, None);
                let mut cache = DfaCache::new();
                check(&set, &oracles, &mut cache, &hay);
            }
        }

        #[test]
        fn fused_set_equals_oracle_under_eviction(
            hay in "[ -~]{0,100}",
        ) {
            // The minimum state budget forces constant flushing; the
            // result must not change.
            let (set, oracles) = build_fused(true, Some(1));
            let mut cache = DfaCache::new();
            check(&set, &oracles, &mut cache, hay.as_bytes());
        }

        #[test]
        fn accelerated_scan_equals_unaccelerated_scan(
            hay in proptest::collection::vec(any::<u8>(), 0..200),
        ) {
            // Quiescent-state skipping must be observationally
            // invisible: identical candidate sets on arbitrary bytes,
            // warm and cold, including the \b/^/$-heavy patterns in
            // PATTERNS. Warm caches matter because analysis is lazy —
            // the first scan may not skip at all.
            let mut on_b = FusedSetBuilder::new();
            let mut off_b = FusedSetBuilder::new().accelerate(false);
            for (i, pat) in PATTERNS.iter().enumerate() {
                on_b.add(i as u32, pat, true).expect("valid pattern");
                off_b.add(i as u32, pat, true).expect("valid pattern");
            }
            let (on, off) = (on_b.build().unwrap(), off_b.build().unwrap());
            let (mut ca, mut cb) = (DfaCache::new(), DfaCache::new());
            for _ in 0..2 {
                let mut a = CandidateSet::new(on.pattern_count());
                let mut b = CandidateSet::new(off.pattern_count());
                let sa = on.scan_into(&hay, &mut ca, &mut a);
                let sb = off.scan_into(&hay, &mut cb, &mut b);
                prop_assert_eq!(
                    a.iter().collect::<Vec<_>>(),
                    b.iter().collect::<Vec<_>>(),
                    "accel changed matches on {:?}", hay
                );
                prop_assert_eq!(sb.skipped, 0);
                prop_assert!(sa.hit_ratio().is_none_or(|r| (0.0..=1.0).contains(&r)));
            }
        }

        #[test]
        fn accelerated_scan_equals_unaccelerated_under_eviction(
            hay in "[ -~]{0,150}",
        ) {
            // Flush-on-full clears acceleration plans with the states
            // they index; skipping must stay invisible through
            // constant re-determinization.
            let mut on_b = FusedSetBuilder::new().state_limit(1);
            let mut off_b = FusedSetBuilder::new().state_limit(1).accelerate(false);
            for (i, pat) in PATTERNS.iter().enumerate() {
                on_b.add(i as u32, pat, true).expect("valid pattern");
                off_b.add(i as u32, pat, true).expect("valid pattern");
            }
            let (on, off) = (on_b.build().unwrap(), off_b.build().unwrap());
            let (mut ca, mut cb) = (DfaCache::new(), DfaCache::new());
            for _ in 0..2 {
                let mut a = CandidateSet::new(on.pattern_count());
                let mut b = CandidateSet::new(off.pattern_count());
                let sa = on.scan_into(hay.as_bytes(), &mut ca, &mut a);
                off.scan_into(hay.as_bytes(), &mut cb, &mut b);
                prop_assert_eq!(
                    a.iter().collect::<Vec<_>>(),
                    b.iter().collect::<Vec<_>>(),
                    "accel changed matches under eviction on {:?}", hay
                );
                prop_assert!(sa.hit_ratio().is_none_or(|r| (0.0..=1.0).contains(&r)));
            }
        }
    }
}
