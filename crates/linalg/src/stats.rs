//! Column statistics and the heat-map standardization of §II-C.

use crate::dense::Matrix;

/// Mean of a slice; 0 for empty input.
pub fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        0.0
    } else {
        xs.iter().sum::<f64>() / xs.len() as f64
    }
}

/// Population standard deviation; 0 for empty input.
pub fn std_dev(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    let m = mean(xs);
    (xs.iter().map(|x| (x - m) * (x - m)).sum::<f64>() / xs.len() as f64).sqrt()
}

/// Pearson correlation coefficient of two equal-length series.
/// Returns 0 when either series has zero variance.
///
/// # Panics
/// Panics when lengths differ.
pub fn pearson(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len(), "pearson: length mismatch");
    let (ma, mb) = (mean(a), mean(b));
    let mut cov = 0.0;
    let mut va = 0.0;
    let mut vb = 0.0;
    for (&x, &y) in a.iter().zip(b) {
        cov += (x - ma) * (y - mb);
        va += (x - ma) * (x - ma);
        vb += (y - mb) * (y - mb);
    }
    if va == 0.0 || vb == 0.0 {
        0.0
    } else {
        cov / (va.sqrt() * vb.sqrt())
    }
}

/// Standardizes every column to zero mean / unit standard deviation,
/// exactly as the paper prepares the heat map: "the mean is then
/// subtracted from each value and the result divided by the standard
/// deviation" (§II-C). Constant columns become all-zero.
pub fn standardize_columns(m: &Matrix) -> Matrix {
    let mut out = Matrix::zeros(m.rows(), m.cols());
    for c in 0..m.cols() {
        let col = m.col(c);
        let mu = mean(&col);
        let sd = std_dev(&col);
        for r in 0..m.rows() {
            let v = if sd == 0.0 {
                0.0
            } else {
                (m.get(r, c) - mu) / sd
            };
            out.set(r, c, v);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_and_std() {
        assert_eq!(mean(&[1.0, 2.0, 3.0]), 2.0);
        assert_eq!(mean(&[]), 0.0);
        assert!((std_dev(&[2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]) - 2.0).abs() < 1e-12);
        assert_eq!(std_dev(&[]), 0.0);
    }

    #[test]
    fn pearson_known_values() {
        assert!((pearson(&[1., 2., 3.], &[2., 4., 6.]) - 1.0).abs() < 1e-12);
        assert!((pearson(&[1., 2., 3.], &[6., 4., 2.]) + 1.0).abs() < 1e-12);
        assert_eq!(pearson(&[1., 1., 1.], &[1., 2., 3.]), 0.0);
    }

    #[test]
    fn standardization_properties() {
        let m = Matrix::from_rows(3, 2, vec![1., 5., 2., 5., 3., 5.]);
        let s = standardize_columns(&m);
        // Column 0 has mean 0 and unit std after standardization.
        let col0 = s.col(0);
        assert!(mean(&col0).abs() < 1e-12);
        assert!((std_dev(&col0) - 1.0).abs() < 1e-12);
        // Constant column 1 becomes zeros, not NaN.
        assert!(s.col(1).iter().all(|v| *v == 0.0));
    }
}
