//! Small vector kernels used across the pipeline.

/// Dot product.
///
/// # Panics
/// Panics when lengths differ.
pub fn dot(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len(), "dot: length mismatch");
    a.iter().zip(b).map(|(x, y)| x * y).sum()
}

/// `y += alpha * x`.
///
/// # Panics
/// Panics when lengths differ.
pub fn axpy(alpha: f64, x: &[f64], y: &mut [f64]) {
    assert_eq!(x.len(), y.len(), "axpy: length mismatch");
    for (yi, xi) in y.iter_mut().zip(x) {
        *yi += alpha * xi;
    }
}

/// Euclidean norm.
pub fn norm2(a: &[f64]) -> f64 {
    dot(a, a).sqrt()
}

/// Squared Euclidean distance between two dense vectors.
///
/// # Panics
/// Panics when lengths differ.
pub fn distance_sq(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len(), "distance_sq: length mismatch");
    a.iter().zip(b).map(|(x, y)| (x - y) * (x - y)).sum()
}

/// Euclidean distance between two dense vectors.
pub fn distance(a: &[f64], b: &[f64]) -> f64 {
    distance_sq(a, b).sqrt()
}

/// Elementwise in-place scaling.
pub fn scale(a: &mut [f64], alpha: f64) {
    for v in a {
        *v *= alpha;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dot_and_norm() {
        assert_eq!(dot(&[1., 2.], &[3., 4.]), 11.0);
        assert_eq!(norm2(&[3., 4.]), 5.0);
        assert_eq!(norm2(&[]), 0.0);
    }

    #[test]
    fn axpy_updates_in_place() {
        let mut y = vec![1.0, 1.0];
        axpy(2.0, &[1.0, -1.0], &mut y);
        assert_eq!(y, vec![3.0, -1.0]);
    }

    #[test]
    fn distances() {
        assert_eq!(distance_sq(&[0., 0.], &[3., 4.]), 25.0);
        assert_eq!(distance(&[0., 0.], &[3., 4.]), 5.0);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn mismatched_lengths_panic() {
        let _ = dot(&[1.0], &[1.0, 2.0]);
    }

    #[test]
    fn scaling() {
        let mut a = vec![1.0, -2.0];
        scale(&mut a, -0.5);
        assert_eq!(a, vec![-0.5, 1.0]);
    }
}
