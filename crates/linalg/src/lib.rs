//! Dense and sparse matrices, statistics and distances for the
//! pSigene pipeline.
//!
//! This crate is dependency-light numerical plumbing: a row-major
//! dense [`Matrix`], a CSR [`CsrMatrix`] for the ~85 %-zero
//! sample×feature matrix, vector kernels, column standardization for
//! the heat map of §II-C, and condensed pairwise distances consumed
//! by hierarchical clustering.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod dense;
pub mod distance;
pub mod sparse;
pub mod stats;
pub mod vector;

pub use dense::Matrix;
pub use sparse::{CsrBuilder, CsrMatrix};

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    fn small_matrix() -> impl Strategy<Value = Matrix> {
        (1usize..8, 1usize..8).prop_flat_map(|(r, c)| {
            proptest::collection::vec(-100.0f64..100.0, r * c)
                .prop_map(move |data| Matrix::from_rows(r, c, data))
        })
    }

    proptest! {
        #[test]
        fn matvec_t_is_adjoint(m in small_matrix()) {
            // <Ax, y> == <x, A^T y> for random x, y of ones.
            let x = vec![1.0; m.cols()];
            let y = vec![1.0; m.rows()];
            let ax = m.matvec(&x);
            let aty = m.matvec_t(&y);
            let lhs: f64 = ax.iter().sum();
            let rhs: f64 = aty.iter().sum();
            prop_assert!((lhs - rhs).abs() < 1e-6 * (1.0 + lhs.abs()));
        }

        #[test]
        fn distance_is_a_metric(
            a in proptest::collection::vec(-50.0f64..50.0, 1..8),
        ) {
            prop_assert_eq!(vector::distance(&a, &a), 0.0);
        }

        #[test]
        fn triangle_inequality(
            n in 1usize..6,
            data in proptest::collection::vec(-10.0f64..10.0, 18),
        ) {
            let a = &data[0..n];
            let b = &data[6..6 + n];
            let c = &data[12..12 + n];
            let ab = vector::distance(a, b);
            let bc = vector::distance(b, c);
            let ac = vector::distance(a, c);
            prop_assert!(ac <= ab + bc + 1e-9);
        }

        #[test]
        fn standardized_columns_have_unit_std(m in small_matrix()) {
            let s = stats::standardize_columns(&m);
            for c in 0..s.cols() {
                let col = s.col(c);
                let sd = stats::std_dev(&col);
                // Either the column was constant (all zeros now) or unit std.
                prop_assert!(sd.abs() < 1e-9 || (sd - 1.0).abs() < 1e-9);
                prop_assert!(stats::mean(&col).abs() < 1e-9);
            }
        }

        #[test]
        fn csr_matches_dense_construction(m in small_matrix()) {
            let mut b = CsrBuilder::new(m.cols());
            for r in 0..m.rows() {
                b.push_dense_row(m.row(r));
            }
            let s = b.build();
            for r in 0..m.rows() {
                for c in 0..m.cols() {
                    prop_assert_eq!(s.get(r, c), m.get(r, c));
                }
            }
        }
    }
}
