//! Compressed sparse row (CSR) matrices.
//!
//! The sample×feature matrix is ~85 % zeros at paper scale, so the
//! clustering path stores it sparsely; rows are immutable once built.

use crate::dense::Matrix;
use serde::{Deserialize, Serialize};

/// A CSR matrix of `f64`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CsrMatrix {
    rows: usize,
    cols: usize,
    /// Row start offsets into `col_idx`/`values`; length `rows + 1`.
    row_ptr: Vec<usize>,
    col_idx: Vec<u32>,
    values: Vec<f64>,
}

/// Incrementally builds a [`CsrMatrix`] row by row.
#[derive(Debug, Default)]
pub struct CsrBuilder {
    cols: usize,
    row_ptr: Vec<usize>,
    col_idx: Vec<u32>,
    values: Vec<f64>,
}

impl CsrBuilder {
    /// Starts a builder for matrices with `cols` columns.
    pub fn new(cols: usize) -> CsrBuilder {
        CsrBuilder {
            cols,
            row_ptr: vec![0],
            col_idx: Vec::new(),
            values: Vec::new(),
        }
    }

    /// Appends a row given `(column, value)` pairs; zero values are
    /// dropped, duplicate columns are summed.
    pub fn push_row(&mut self, entries: &[(usize, f64)]) {
        let mut sorted: Vec<(usize, f64)> = entries.to_vec();
        sorted.sort_by_key(|e| e.0);
        let mut last_col = usize::MAX;
        for (c, v) in sorted {
            assert!(c < self.cols, "column {c} out of bounds ({})", self.cols);
            if v == 0.0 {
                continue;
            }
            if c == last_col {
                let lv = self.values.last_mut().expect("previous value");
                *lv += v;
            } else {
                self.col_idx.push(c as u32);
                self.values.push(v);
                last_col = c;
            }
        }
        self.row_ptr.push(self.col_idx.len());
    }

    /// Appends a row from a dense slice.
    pub fn push_dense_row(&mut self, row: &[f64]) {
        assert_eq!(row.len(), self.cols, "dense row width mismatch");
        for (c, &v) in row.iter().enumerate() {
            if v != 0.0 {
                self.col_idx.push(c as u32);
                self.values.push(v);
            }
        }
        self.row_ptr.push(self.col_idx.len());
    }

    /// Finalizes into an immutable matrix.
    pub fn build(self) -> CsrMatrix {
        CsrMatrix {
            rows: self.row_ptr.len() - 1,
            cols: self.cols,
            row_ptr: self.row_ptr,
            col_idx: self.col_idx,
            values: self.values,
        }
    }
}

impl CsrMatrix {
    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Number of stored (non-zero) entries.
    pub fn nnz(&self) -> usize {
        self.values.len()
    }

    /// The `(column, value)` pairs of row `r`, sorted by column.
    pub fn row(&self, r: usize) -> impl Iterator<Item = (usize, f64)> + '_ {
        let lo = self.row_ptr[r];
        let hi = self.row_ptr[r + 1];
        self.col_idx[lo..hi]
            .iter()
            .zip(&self.values[lo..hi])
            .map(|(&c, &v)| (c as usize, v))
    }

    /// Value at `(r, c)` (binary search within the row).
    pub fn get(&self, r: usize, c: usize) -> f64 {
        let lo = self.row_ptr[r];
        let hi = self.row_ptr[r + 1];
        match self.col_idx[lo..hi].binary_search(&(c as u32)) {
            Ok(i) => self.values[lo + i],
            Err(_) => 0.0,
        }
    }

    /// Squared Euclidean distance between two rows; runs in the size
    /// of the two rows' non-zeros.
    pub fn row_distance_sq(&self, a: usize, b: usize) -> f64 {
        let (mut ia, ha) = (self.row_ptr[a], self.row_ptr[a + 1]);
        let (mut ib, hb) = (self.row_ptr[b], self.row_ptr[b + 1]);
        let mut acc = 0.0;
        while ia < ha && ib < hb {
            let ca = self.col_idx[ia];
            let cb = self.col_idx[ib];
            match ca.cmp(&cb) {
                std::cmp::Ordering::Equal => {
                    let d = self.values[ia] - self.values[ib];
                    acc += d * d;
                    ia += 1;
                    ib += 1;
                }
                std::cmp::Ordering::Less => {
                    acc += self.values[ia] * self.values[ia];
                    ia += 1;
                }
                std::cmp::Ordering::Greater => {
                    acc += self.values[ib] * self.values[ib];
                    ib += 1;
                }
            }
        }
        while ia < ha {
            acc += self.values[ia] * self.values[ia];
            ia += 1;
        }
        while ib < hb {
            acc += self.values[ib] * self.values[ib];
            ib += 1;
        }
        acc
    }

    /// Dot product of rows `a` and `b` (sorted-merge over the two
    /// rows' non-zeros; runs in O(nnz_a + nnz_b)).
    pub fn row_dot(&self, a: usize, b: usize) -> f64 {
        let (mut ia, ha) = (self.row_ptr[a], self.row_ptr[a + 1]);
        let (mut ib, hb) = (self.row_ptr[b], self.row_ptr[b + 1]);
        let mut acc = 0.0;
        while ia < ha && ib < hb {
            let ca = self.col_idx[ia];
            let cb = self.col_idx[ib];
            match ca.cmp(&cb) {
                std::cmp::Ordering::Equal => {
                    acc += self.values[ia] * self.values[ib];
                    ia += 1;
                    ib += 1;
                }
                std::cmp::Ordering::Less => ia += 1,
                std::cmp::Ordering::Greater => ib += 1,
            }
        }
        acc
    }

    /// Per-row squared Euclidean norms `‖row‖²`, accumulated in
    /// storage (column) order.
    pub fn row_norms_sq(&self) -> Vec<f64> {
        (0..self.rows)
            .map(|r| {
                let lo = self.row_ptr[r];
                let hi = self.row_ptr[r + 1];
                // Explicit +0.0 identity: `Iterator::sum` folds floats
                // from −0.0, which an all-zero row would surface.
                self.values[lo..hi].iter().fold(0.0, |acc, v| acc + v * v)
            })
            .collect()
    }

    /// Matrix–vector product `self · x`. Each row folds its non-zeros
    /// in column order, exactly as the dense product folds the full
    /// row — the skipped terms are all `0·xᵢ`, so the result matches
    /// [`Matrix::matvec`] on the densified matrix bit for bit.
    ///
    /// # Panics
    /// Panics when `x.len() != self.cols()`.
    pub fn matvec(&self, x: &[f64]) -> Vec<f64> {
        assert_eq!(x.len(), self.cols, "dimension mismatch");
        (0..self.rows)
            // Fold from +0.0, not `sum()`'s −0.0 identity: the dense
            // product's skipped `0·xᵢ` terms pull an empty row's
            // accumulator up to +0.0, and we must land on the same bits.
            .map(|r| self.row(r).fold(0.0, |acc, (c, v)| acc + v * x[c]))
            .collect()
    }

    /// Transposed matrix–vector product `selfᵀ · y`; rows are
    /// consumed in order so each output column accumulates in the
    /// same order as [`Matrix::matvec_t`].
    ///
    /// # Panics
    /// Panics when `y.len() != self.rows()`.
    pub fn matvec_t(&self, y: &[f64]) -> Vec<f64> {
        assert_eq!(y.len(), self.rows, "dimension mismatch");
        let mut out = vec![0.0; self.cols];
        for (r, &yi) in y.iter().enumerate() {
            if yi == 0.0 {
                continue;
            }
            for (c, v) in self.row(r) {
                out[c] += v * yi;
            }
        }
        out
    }

    /// Builds a new matrix keeping only the given columns, in order.
    ///
    /// # Panics
    /// Panics when any column index is out of bounds.
    pub fn select_cols(&self, cols: &[usize]) -> CsrMatrix {
        let mut remap = vec![usize::MAX; self.cols];
        for (new, &old) in cols.iter().enumerate() {
            assert!(old < self.cols, "column {old} out of bounds");
            remap[old] = new;
        }
        let mut b = CsrBuilder::new(cols.len());
        let mut row_buf: Vec<(usize, f64)> = Vec::new();
        for r in 0..self.rows {
            row_buf.clear();
            for (c, v) in self.row(r) {
                if remap[c] != usize::MAX {
                    row_buf.push((remap[c], v));
                }
            }
            b.push_row(&row_buf);
        }
        b.build()
    }

    /// Builds a new matrix keeping only the given rows, in order.
    pub fn select_rows(&self, rows: &[usize]) -> CsrMatrix {
        let mut b = CsrBuilder::new(self.cols);
        let mut row_buf: Vec<(usize, f64)> = Vec::new();
        for &r in rows {
            row_buf.clear();
            row_buf.extend(self.row(r));
            b.push_row(&row_buf);
        }
        b.build()
    }

    /// Appends the rows of `other` (same width) after this matrix's.
    ///
    /// # Panics
    /// Panics when widths differ.
    pub fn vstack(&self, other: &CsrMatrix) -> CsrMatrix {
        assert_eq!(self.cols, other.cols, "width mismatch in vstack");
        let mut b = CsrBuilder::new(self.cols);
        let mut row_buf: Vec<(usize, f64)> = Vec::new();
        for m in [self, other] {
            for r in 0..m.rows {
                row_buf.clear();
                row_buf.extend(m.row(r));
                b.push_row(&row_buf);
            }
        }
        b.build()
    }

    /// A copy with every stored value clamped to 1.0 — the "binary
    /// features" variant the paper tried and rejected (§II-B).
    pub fn binarize(&self) -> CsrMatrix {
        let mut out = self.clone();
        for v in &mut out.values {
            *v = 1.0;
        }
        out
    }

    /// Materializes a dense copy (use only for small slices).
    pub fn to_dense(&self) -> Matrix {
        let mut m = Matrix::zeros(self.rows, self.cols);
        for r in 0..self.rows {
            for (c, v) in self.row(r) {
                m.set(r, c, v);
            }
        }
        m
    }

    /// Fraction of exactly-zero entries.
    pub fn sparsity(&self) -> f64 {
        let total = self.rows * self.cols;
        if total == 0 {
            return 0.0;
        }
        1.0 - self.nnz() as f64 / total as f64
    }

    /// Per-column mean (over all rows, counting zeros).
    pub fn col_means(&self) -> Vec<f64> {
        let mut sums = vec![0.0; self.cols];
        for r in 0..self.rows {
            for (c, v) in self.row(r) {
                sums[c] += v;
            }
        }
        if self.rows > 0 {
            for s in &mut sums {
                *s /= self.rows as f64;
            }
        }
        sums
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> CsrMatrix {
        let mut b = CsrBuilder::new(4);
        b.push_dense_row(&[1.0, 0.0, 2.0, 0.0]);
        b.push_dense_row(&[0.0, 0.0, 0.0, 0.0]);
        b.push_dense_row(&[0.0, 3.0, 2.0, 1.0]);
        b.build()
    }

    #[test]
    fn shape_and_nnz() {
        let m = sample();
        assert_eq!((m.rows(), m.cols(), m.nnz()), (3, 4, 5));
        assert!((m.sparsity() - (1.0 - 5.0 / 12.0)).abs() < 1e-12);
    }

    #[test]
    fn get_and_row_iteration() {
        let m = sample();
        assert_eq!(m.get(0, 2), 2.0);
        assert_eq!(m.get(1, 2), 0.0);
        let row2: Vec<_> = m.row(2).collect();
        assert_eq!(row2, vec![(1, 3.0), (2, 2.0), (3, 1.0)]);
    }

    #[test]
    fn sparse_row_distance_matches_dense() {
        let m = sample();
        let d = m.to_dense();
        for a in 0..3 {
            for b in 0..3 {
                let dense: f64 = (0..4).map(|c| (d.get(a, c) - d.get(b, c)).powi(2)).sum();
                assert!((m.row_distance_sq(a, b) - dense).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn duplicate_columns_sum() {
        let mut b = CsrBuilder::new(3);
        b.push_row(&[(1, 2.0), (1, 3.0), (0, 1.0)]);
        let m = b.build();
        assert_eq!(m.get(0, 1), 5.0);
        assert_eq!(m.nnz(), 2);
    }

    #[test]
    fn col_means() {
        let m = sample();
        let means = m.col_means();
        assert!((means[2] - 4.0 / 3.0).abs() < 1e-12);
        assert_eq!(means[0], 1.0 / 3.0);
    }

    #[test]
    fn row_dot_and_norms_match_dense() {
        let m = sample();
        let d = m.to_dense();
        for a in 0..3 {
            for b in 0..3 {
                let dense: f64 = (0..4).map(|c| d.get(a, c) * d.get(b, c)).sum();
                assert_eq!(m.row_dot(a, b), dense);
            }
        }
        let norms = m.row_norms_sq();
        assert_eq!(norms, vec![5.0, 0.0, 14.0]);
    }

    #[test]
    fn matvec_products_match_dense_bitwise() {
        let m = sample();
        let d = m.to_dense();
        let x = [1.5, -2.0, 0.25, 3.0];
        let y = [0.5, -1.0, 2.0];
        let (sx, dx) = (m.matvec(&x), d.matvec(&x));
        let (sy, dy) = (m.matvec_t(&y), d.matvec_t(&y));
        for (a, b) in sx.iter().zip(&dx) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
        for (a, b) in sy.iter().zip(&dy) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    #[test]
    fn binarize_clamps_values() {
        let m = sample().binarize();
        assert_eq!(m.get(2, 1), 1.0);
        assert_eq!(m.get(0, 0), 1.0);
        assert_eq!(m.get(1, 0), 0.0);
        assert_eq!(m.nnz(), sample().nnz());
    }

    #[test]
    fn select_and_stack() {
        let m = sample();
        let s = m.select_cols(&[2, 0]);
        assert_eq!((s.rows(), s.cols()), (3, 2));
        assert_eq!(s.get(0, 0), 2.0); // old col 2
        assert_eq!(s.get(0, 1), 1.0); // old col 0
        let r = m.select_rows(&[2]);
        assert_eq!(r.rows(), 1);
        assert_eq!(r.get(0, 1), 3.0);
        let v = m.vstack(&r);
        assert_eq!(v.rows(), 4);
        assert_eq!(v.get(3, 1), 3.0);
    }

    #[test]
    #[should_panic(expected = "width mismatch")]
    fn vstack_checks_width() {
        let m = sample();
        let n = CsrBuilder::new(2).build();
        let _ = m.vstack(&n);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn column_bounds_checked() {
        let mut b = CsrBuilder::new(2);
        b.push_row(&[(2, 1.0)]);
    }
}
