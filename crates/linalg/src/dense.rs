//! Row-major dense `f64` matrices.

use serde::{Deserialize, Serialize};

/// A row-major dense matrix of `f64`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl Matrix {
    /// Creates a `rows × cols` matrix of zeros.
    pub fn zeros(rows: usize, cols: usize) -> Matrix {
        Matrix {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Creates a matrix from row-major data.
    ///
    /// # Panics
    /// Panics when `data.len() != rows * cols`.
    pub fn from_rows(rows: usize, cols: usize, data: Vec<f64>) -> Matrix {
        assert_eq!(
            data.len(),
            rows * cols,
            "data length {} does not match {rows}x{cols}",
            data.len()
        );
        Matrix { rows, cols, data }
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Element accessor.
    #[inline]
    pub fn get(&self, r: usize, c: usize) -> f64 {
        debug_assert!(r < self.rows && c < self.cols);
        self.data[r * self.cols + c]
    }

    /// Element mutator.
    #[inline]
    pub fn set(&mut self, r: usize, c: usize, v: f64) {
        debug_assert!(r < self.rows && c < self.cols);
        self.data[r * self.cols + c] = v;
    }

    /// A row as a slice.
    pub fn row(&self, r: usize) -> &[f64] {
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// A mutable row slice.
    pub fn row_mut(&mut self, r: usize) -> &mut [f64] {
        &mut self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Copies a column out (columns are strided in row-major layout).
    pub fn col(&self, c: usize) -> Vec<f64> {
        (0..self.rows).map(|r| self.get(r, c)).collect()
    }

    /// The raw row-major buffer.
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }

    /// Builds a new matrix keeping only the given rows, in order.
    pub fn select_rows(&self, rows: &[usize]) -> Matrix {
        let mut out = Matrix::zeros(rows.len(), self.cols);
        for (i, &r) in rows.iter().enumerate() {
            out.row_mut(i).copy_from_slice(self.row(r));
        }
        out
    }

    /// Builds a new matrix keeping only the given columns, in order.
    pub fn select_cols(&self, cols: &[usize]) -> Matrix {
        let mut out = Matrix::zeros(self.rows, cols.len());
        for r in 0..self.rows {
            for (j, &c) in cols.iter().enumerate() {
                out.set(r, j, self.get(r, c));
            }
        }
        out
    }

    /// Matrix–vector product `self * x`.
    ///
    /// # Panics
    /// Panics when `x.len() != self.cols()`.
    pub fn matvec(&self, x: &[f64]) -> Vec<f64> {
        assert_eq!(x.len(), self.cols, "dimension mismatch");
        self.data
            .chunks_exact(self.cols)
            .map(|row| row.iter().zip(x).map(|(a, b)| a * b).sum())
            .collect()
    }

    /// Transposed matrix–vector product `selfᵀ * y`.
    ///
    /// # Panics
    /// Panics when `y.len() != self.rows()`.
    pub fn matvec_t(&self, y: &[f64]) -> Vec<f64> {
        assert_eq!(y.len(), self.rows, "dimension mismatch");
        let mut out = vec![0.0; self.cols];
        for (row, &yi) in self.data.chunks_exact(self.cols).zip(y) {
            if yi == 0.0 {
                continue;
            }
            for (o, &a) in out.iter_mut().zip(row) {
                *o += a * yi;
            }
        }
        out
    }

    /// Fraction of exactly-zero entries — the paper reports its
    /// 30 000 × 159 matrix to be ~85 % zeros.
    pub fn sparsity(&self) -> f64 {
        if self.data.is_empty() {
            return 0.0;
        }
        let zeros = self.data.iter().filter(|v| **v == 0.0).count();
        zeros as f64 / self.data.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_access() {
        let mut m = Matrix::zeros(2, 3);
        m.set(1, 2, 5.0);
        assert_eq!(m.get(1, 2), 5.0);
        assert_eq!(m.get(0, 0), 0.0);
        assert_eq!(m.row(1), &[0.0, 0.0, 5.0]);
        assert_eq!(m.col(2), vec![0.0, 5.0]);
    }

    #[test]
    #[should_panic(expected = "does not match")]
    fn from_rows_checks_len() {
        let _ = Matrix::from_rows(2, 2, vec![1.0; 3]);
    }

    #[test]
    fn selection() {
        let m = Matrix::from_rows(3, 2, vec![1., 2., 3., 4., 5., 6.]);
        let r = m.select_rows(&[2, 0]);
        assert_eq!(r.as_slice(), &[5., 6., 1., 2.]);
        let c = m.select_cols(&[1]);
        assert_eq!(c.as_slice(), &[2., 4., 6.]);
    }

    #[test]
    fn matvec_products() {
        let m = Matrix::from_rows(2, 3, vec![1., 2., 3., 4., 5., 6.]);
        assert_eq!(m.matvec(&[1., 0., -1.]), vec![-2.0, -2.0]);
        assert_eq!(m.matvec_t(&[1., 1.]), vec![5.0, 7.0, 9.0]);
    }

    #[test]
    fn sparsity_measure() {
        let m = Matrix::from_rows(1, 4, vec![0., 1., 0., 0.]);
        assert!((m.sparsity() - 0.75).abs() < 1e-12);
        assert_eq!(Matrix::zeros(0, 0).sparsity(), 0.0);
    }
}
