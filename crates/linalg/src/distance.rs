//! Pairwise distances in condensed form.
//!
//! Hierarchical clustering consumes a condensed upper-triangular
//! distance matrix: for `n` points, entry `(i, j)` with `i < j` lives
//! at index `condensed_index(n, i, j)` of a `n·(n−1)/2` vector.
//!
//! Both pairwise functions use the Gram trick — per-row squared norms
//! are computed once and every entry is `d²(i,j) = ‖i‖² + ‖j‖² −
//! 2⟨i,j⟩` — and fan contiguous row blocks out over `threads` scoped
//! workers writing disjoint slices of the condensed vector. Every
//! entry is computed independently from the same inputs, so the
//! output is bit-identical for every thread count.

use crate::dense::Matrix;
use crate::sparse::CsrMatrix;

/// Index of pair `(i, j)` (`i < j`) in a condensed distance vector of
/// `n` points.
///
/// # Panics
/// Panics when `i >= j` or `j >= n`.
pub fn condensed_index(n: usize, i: usize, j: usize) -> usize {
    assert!(i < j && j < n, "invalid condensed pair ({i}, {j}) of {n}");
    // Offset of row i: sum_{k<i} (n-1-k) = i*n - i*(i+1)/2 - i ... derived:
    i * n - i * (i + 1) / 2 + (j - i - 1)
}

/// Number of entries in a condensed matrix of `n` points.
pub fn condensed_len(n: usize) -> usize {
    n * (n - 1) / 2
}

/// Base offset of condensed row `i`, defined so that
/// `condensed_index(n, i, j) == condensed_row_base(n, i).wrapping_add(j)`
/// for every valid `i < j < n`. Hoisting the base out of a loop over
/// `j` (or a table of bases out of a loop over pairs) replaces the
/// multiply/divide of [`condensed_index`] with one add per lookup.
///
/// The base sits one slot *before* the row start, so `i = 0` wraps
/// around `usize`; adding any valid `j ≥ 1` wraps back into range.
pub fn condensed_row_base(n: usize, i: usize) -> usize {
    (i * n - i * (i + 1) / 2).wrapping_sub(i + 1)
}

/// Euclidean distance from the Gram identity
/// `d² = ‖a‖² + ‖b‖² − 2⟨a,b⟩`, clamped at zero against floating
/// cancellation for near-identical rows.
///
/// Every path that produces or re-derives a pairwise distance (the
/// condensed builders here, the streaming cophenetic pass in the
/// pipeline) must go through this one function so the values stay
/// bit-identical to each other.
#[inline]
pub fn euclidean_from_gram(norm_a_sq: f64, norm_b_sq: f64, dot: f64) -> f64 {
    (norm_a_sq + norm_b_sq - 2.0 * dot).max(0.0).sqrt()
}

/// Condensed Euclidean pairwise distances of dense rows, fanned out
/// over `threads` workers (1 = sequential; same bits either way).
pub fn pairwise_euclidean(m: &Matrix, threads: usize) -> Vec<f64> {
    let n = m.rows();
    let norms: Vec<f64> = (0..n)
        .map(|r| m.row(r).iter().map(|v| v * v).sum())
        .collect();
    fill_condensed(n, threads, |i, j| {
        let dot = m.row(i).iter().zip(m.row(j)).map(|(a, b)| a * b).sum();
        euclidean_from_gram(norms[i], norms[j], dot)
    })
}

/// Condensed Euclidean pairwise distances of sparse rows; each entry
/// runs in O(nnz of the two rows) via a sorted-merge dot product.
pub fn pairwise_euclidean_sparse(m: &CsrMatrix, threads: usize) -> Vec<f64> {
    let n = m.rows();
    let norms = m.row_norms_sq();
    fill_condensed(n, threads, |i, j| {
        euclidean_from_gram(norms[i], norms[j], m.row_dot(i, j))
    })
}

/// Fills a condensed vector by evaluating `entry(i, j)` for every
/// pair. Rows are split into contiguous blocks of roughly equal entry
/// counts (row `i` owns `n−1−i` entries, so early rows are longer)
/// and each worker writes its own disjoint slice — the reduction
/// order per entry never depends on the thread count.
fn fill_condensed<F>(n: usize, threads: usize, entry: F) -> Vec<f64>
where
    F: Fn(usize, usize) -> f64 + Sync,
{
    let len = condensed_len(n);
    let mut out = vec![0.0; len];
    let threads = threads.max(1);
    if threads == 1 || len < 2048 {
        let mut k = 0;
        for i in 0..n {
            for j in (i + 1)..n {
                out[k] = entry(i, j);
                k += 1;
            }
        }
        return out;
    }
    let target = len.div_ceil(threads).max(1);
    crossbeam::scope(|scope| {
        let entry = &entry;
        let mut rest: &mut [f64] = &mut out;
        let mut row = 0usize;
        while row < n && !rest.is_empty() {
            // Grow the block row by row until it reaches the target
            // entry count (the final block takes the remainder).
            let mut end = row;
            let mut size = 0usize;
            while end < n && size < target {
                size += n - 1 - end;
                end += 1;
            }
            let size = size.min(rest.len());
            let (chunk, tail) = rest.split_at_mut(size);
            rest = tail;
            let start_row = row;
            row = end;
            scope.spawn(move |_| {
                let mut k = 0;
                for i in start_row..end {
                    for j in (i + 1)..n {
                        chunk[k] = entry(i, j);
                        k += 1;
                    }
                }
            });
        }
    })
    .expect("pairwise distance worker panicked");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sparse::CsrBuilder;
    use crate::vector::distance;

    #[test]
    fn condensed_indexing_covers_all_pairs() {
        let n = 6;
        let mut seen = vec![false; condensed_len(n)];
        for i in 0..n {
            for j in (i + 1)..n {
                let k = condensed_index(n, i, j);
                assert!(!seen[k], "index {k} hit twice");
                seen[k] = true;
            }
        }
        assert!(seen.iter().all(|s| *s));
    }

    #[test]
    fn row_base_matches_condensed_index() {
        for n in [2usize, 3, 7, 12] {
            for i in 0..n {
                let base = condensed_row_base(n, i);
                for j in (i + 1)..n {
                    assert_eq!(base.wrapping_add(j), condensed_index(n, i, j));
                }
            }
        }
    }

    #[test]
    fn dense_and_sparse_agree() {
        let d = Matrix::from_rows(3, 3, vec![1., 0., 0., 0., 2., 0., 0., 0., 2.]);
        let mut b = CsrBuilder::new(3);
        for r in 0..3 {
            b.push_dense_row(d.row(r));
        }
        let s = b.build();
        let dd = pairwise_euclidean(&d, 1);
        let ds = pairwise_euclidean_sparse(&s, 1);
        for (a, b) in dd.iter().zip(&ds) {
            assert!((a - b).abs() < 1e-12);
        }
        // d(0,1) = sqrt(1+4) = sqrt(5)
        assert!((dd[condensed_index(3, 0, 1)] - 5f64.sqrt()).abs() < 1e-12);
    }

    #[test]
    fn gram_trick_matches_subtract_and_square() {
        // On integer-valued rows (the feature counts the pipeline
        // clusters) both formulations are exact integer arithmetic,
        // so the Gram rewrite is bit-identical, not merely close.
        let m = Matrix::from_rows(4, 3, vec![1., 0., 3., 0., 2., 0., 5., 5., 5., 1., 1., 4.]);
        let gram = pairwise_euclidean(&m, 1);
        let mut k = 0;
        for i in 0..4 {
            for j in (i + 1)..4 {
                let naive = distance(m.row(i), m.row(j));
                assert_eq!(gram[k].to_bits(), naive.to_bits());
                k += 1;
            }
        }
    }

    #[test]
    fn parallel_is_bit_identical_to_sequential() {
        // Large enough to cross the parallel threshold.
        let n = 80;
        let mut b = CsrBuilder::new(16);
        let mut v = 1u64;
        for _ in 0..n {
            let mut row = Vec::new();
            for c in 0..16 {
                v = v.wrapping_mul(6364136223846793005).wrapping_add(1);
                if v.is_multiple_of(3) {
                    row.push((c, (v % 7) as f64));
                }
            }
            b.push_row(&row);
        }
        let m = b.build();
        let seq = pairwise_euclidean_sparse(&m, 1);
        for t in 2..=8 {
            let par = pairwise_euclidean_sparse(&m, t);
            assert_eq!(seq.len(), par.len());
            for (a, b) in seq.iter().zip(&par) {
                assert_eq!(a.to_bits(), b.to_bits(), "threads={t}");
            }
        }
        let dm = m.to_dense();
        let dseq = pairwise_euclidean(&dm, 1);
        let dpar = pairwise_euclidean(&dm, 4);
        for (a, b) in dseq.iter().zip(&dpar) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    #[test]
    #[should_panic(expected = "invalid condensed pair")]
    fn diagonal_is_invalid() {
        let _ = condensed_index(4, 2, 2);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use crate::sparse::{CsrBuilder, CsrMatrix};
    use proptest::prelude::*;

    fn sparse_matrix() -> impl Strategy<Value = CsrMatrix> {
        (2usize..40, 1usize..12).prop_flat_map(|(rows, cols)| {
            proptest::collection::vec(0.0f64..4.0, rows * cols).prop_map(move |data| {
                let mut b = CsrBuilder::new(cols);
                for r in 0..rows {
                    // Threshold to ~50 % sparsity.
                    let row: Vec<(usize, f64)> = data[r * cols..(r + 1) * cols]
                        .iter()
                        .enumerate()
                        .filter(|(_, v)| **v >= 2.0)
                        .map(|(c, v)| (c, *v))
                        .collect();
                    b.push_row(&row);
                }
                b.build()
            })
        })
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(48))]

        /// The tentpole invariant: the parallel fan-out produces the
        /// same bits as the sequential pass for every thread count.
        #[test]
        fn parallel_pairwise_is_bit_identical(m in sparse_matrix()) {
            let seq = pairwise_euclidean_sparse(&m, 1);
            for t in 1..=8usize {
                let par = pairwise_euclidean_sparse(&m, t);
                prop_assert_eq!(seq.len(), par.len());
                for (a, b) in seq.iter().zip(&par) {
                    prop_assert_eq!(a.to_bits(), b.to_bits());
                }
            }
        }

        /// Gram-trick distances agree with the merge-based
        /// subtract-and-square form within floating tolerance.
        #[test]
        fn gram_matches_row_distance(m in sparse_matrix()) {
            let cond = pairwise_euclidean_sparse(&m, 1);
            let n = m.rows();
            for i in 0..n {
                for j in (i + 1)..n {
                    let d = m.row_distance_sq(i, j).sqrt();
                    let g = cond[condensed_index(n, i, j)];
                    prop_assert!((d - g).abs() <= 1e-9 * (1.0 + d.abs()));
                }
            }
        }
    }
}
