//! Pairwise distances in condensed form.
//!
//! Hierarchical clustering consumes a condensed upper-triangular
//! distance matrix: for `n` points, entry `(i, j)` with `i < j` lives
//! at index `condensed_index(n, i, j)` of a `n·(n−1)/2` vector.

use crate::dense::Matrix;
use crate::sparse::CsrMatrix;
use crate::vector::distance;

/// Index of pair `(i, j)` (`i < j`) in a condensed distance vector of
/// `n` points.
///
/// # Panics
/// Panics when `i >= j` or `j >= n`.
pub fn condensed_index(n: usize, i: usize, j: usize) -> usize {
    assert!(i < j && j < n, "invalid condensed pair ({i}, {j}) of {n}");
    // Offset of row i: sum_{k<i} (n-1-k) = i*n - i*(i+1)/2 - i ... derived:
    i * n - i * (i + 1) / 2 + (j - i - 1)
}

/// Number of entries in a condensed matrix of `n` points.
pub fn condensed_len(n: usize) -> usize {
    n * (n - 1) / 2
}

/// Condensed Euclidean pairwise distances of dense rows.
pub fn pairwise_euclidean(m: &Matrix) -> Vec<f64> {
    let n = m.rows();
    let mut out = Vec::with_capacity(condensed_len(n.max(1)));
    for i in 0..n {
        for j in (i + 1)..n {
            out.push(distance(m.row(i), m.row(j)));
        }
    }
    out
}

/// Condensed Euclidean pairwise distances of sparse rows; runs in
/// O(nnz) per pair rather than O(cols).
pub fn pairwise_euclidean_sparse(m: &CsrMatrix) -> Vec<f64> {
    let n = m.rows();
    let mut out = Vec::with_capacity(condensed_len(n.max(1)));
    for i in 0..n {
        for j in (i + 1)..n {
            out.push(m.row_distance_sq(i, j).sqrt());
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sparse::CsrBuilder;

    #[test]
    fn condensed_indexing_covers_all_pairs() {
        let n = 6;
        let mut seen = vec![false; condensed_len(n)];
        for i in 0..n {
            for j in (i + 1)..n {
                let k = condensed_index(n, i, j);
                assert!(!seen[k], "index {k} hit twice");
                seen[k] = true;
            }
        }
        assert!(seen.iter().all(|s| *s));
    }

    #[test]
    fn dense_and_sparse_agree() {
        let d = Matrix::from_rows(3, 3, vec![1., 0., 0., 0., 2., 0., 0., 0., 2.]);
        let mut b = CsrBuilder::new(3);
        for r in 0..3 {
            b.push_dense_row(d.row(r));
        }
        let s = b.build();
        let dd = pairwise_euclidean(&d);
        let ds = pairwise_euclidean_sparse(&s);
        for (a, b) in dd.iter().zip(&ds) {
            assert!((a - b).abs() < 1e-12);
        }
        // d(0,1) = sqrt(1+4) = sqrt(5)
        assert!((dd[condensed_index(3, 0, 1)] - 5f64.sqrt()).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "invalid condensed pair")]
    fn diagonal_is_invalid() {
        let _ = condensed_index(4, 2, 2);
    }
}
