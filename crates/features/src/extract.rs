//! Feature extraction: payloads → sparse sample×feature matrices.
//!
//! Payloads are first normalized with the five transformations of
//! §II-A, then every feature's `count_all` runs over the normalized
//! bytes. Extraction parallelizes over samples with crossbeam scoped
//! threads (each sample is independent).

use crate::set::FeatureSet;
use psigene_http::normalize::normalize;
use psigene_linalg::{CsrBuilder, CsrMatrix};

/// Extracts the feature vector of one payload (sparse, as
/// `(column, count)` pairs).
pub fn extract_row(set: &FeatureSet, payload: &[u8]) -> Vec<(usize, f64)> {
    let norm = normalize(payload);
    let mut row = Vec::new();
    for f in set.features() {
        let c = f.count(&norm);
        if c > 0 {
            row.push((f.id, c as f64));
        }
    }
    row
}

/// Extracts a dense `f64` vector (for detection-time scoring against
/// a specific signature's features).
pub fn extract_dense(set: &FeatureSet, payload: &[u8]) -> Vec<f64> {
    let mut out = Vec::new();
    extract_dense_into(set, payload, &mut out);
    out
}

/// Like [`extract_dense`] but writes into a caller-owned buffer,
/// so batch scoring (one vector per request) reuses a single
/// allocation across the whole batch. The buffer is cleared and
/// resized to `set.len()`.
pub fn extract_dense_into(set: &FeatureSet, payload: &[u8], out: &mut Vec<f64>) {
    let norm = normalize(payload);
    out.clear();
    out.extend(set.features().iter().map(|f| f.count(&norm) as f64));
}

/// Extracts the full sample×feature matrix, parallelized over
/// `threads` workers (1 = sequential).
pub fn extract_matrix(set: &FeatureSet, payloads: &[&[u8]], threads: usize) -> CsrMatrix {
    let threads = threads.max(1);
    if threads == 1 || payloads.len() < 2 * threads {
        let mut b = CsrBuilder::new(set.len());
        for p in payloads {
            b.push_row(&extract_row(set, p));
        }
        let m = b.build();
        record_matrix_telemetry(&m, set.len());
        return m;
    }
    // Chunk the payloads; each worker extracts its slice, results are
    // reassembled in order.
    let chunk = payloads.len().div_ceil(threads);
    let mut results: Vec<Vec<Vec<(usize, f64)>>> = Vec::new();
    crossbeam::scope(|scope| {
        let mut handles = Vec::new();
        for ch in payloads.chunks(chunk) {
            handles.push(
                scope.spawn(move |_| ch.iter().map(|p| extract_row(set, p)).collect::<Vec<_>>()),
            );
        }
        for h in handles {
            results.push(h.join().expect("extraction worker panicked"));
        }
    })
    .expect("crossbeam scope");
    let mut b = CsrBuilder::new(set.len());
    for part in results {
        for row in part {
            b.push_row(&row);
        }
    }
    let m = b.build();
    record_matrix_telemetry(&m, set.len());
    m
}

/// Accounts one extracted matrix in the global registry: every
/// sample×feature cell costs one regex evaluation (`count_all`), and
/// the fill rate is the fraction of nonzero cells.
fn record_matrix_telemetry(m: &CsrMatrix, features: usize) {
    let telemetry = psigene_telemetry::global();
    telemetry
        .counter("features.regex_evals")
        .add((m.rows() * features) as u64);
    telemetry
        .counter("features.rows_extracted")
        .add(m.rows() as u64);
    let cells = m.rows() * m.cols();
    if cells > 0 {
        telemetry
            .gauge("features.matrix_fill_rate")
            .set(m.nnz() as f64 / cells as f64);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn union_select_payload_lights_up_features() {
        let set = FeatureSet::full();
        let row = extract_row(&set, b"id=-1+UNION+SELECT+1,2,concat(version(),0x3a),4--+-");
        assert!(!row.is_empty());
        // At least the union and select reserved words must count.
        let names: Vec<&str> = row
            .iter()
            .map(|&(c, _)| set.features()[c].name.as_str())
            .collect();
        assert!(names.contains(&"kw:union"), "{names:?}");
        assert!(names.contains(&"kw:select"), "{names:?}");
        assert!(names.iter().any(|n| n.starts_with("sig:")), "{names:?}");
    }

    #[test]
    fn benign_payload_is_nearly_silent() {
        let set = FeatureSet::full();
        let row = extract_row(&set, b"page=2&sort=asc&term=2012");
        // A couple of incidental hits are fine (`=`-style features);
        // the row must be far sparser than an attack's.
        assert!(row.len() < 10, "benign row too hot: {row:?}");
    }

    #[test]
    fn counts_not_flags() {
        let set = FeatureSet::full();
        let row = extract_row(&set, b"q=char(58),char(58),char(58)");
        let char_count = row
            .iter()
            .find(|&&(c, _)| set.features()[c].name == "sig:char\\s*\\(")
            .map(|&(_, v)| v);
        assert_eq!(char_count, Some(3.0));
    }

    #[test]
    fn parallel_matches_sequential() {
        let set = FeatureSet::full();
        let payloads: Vec<Vec<u8>> = (0..40)
            .map(|i| format!("id={i}+union+select+{i},version()--").into_bytes())
            .collect();
        let refs: Vec<&[u8]> = payloads.iter().map(|p| p.as_slice()).collect();
        let seq = extract_matrix(&set, &refs, 1);
        let par = extract_matrix(&set, &refs, 4);
        assert_eq!(seq.rows(), par.rows());
        assert_eq!(seq.nnz(), par.nnz());
        for r in 0..seq.rows() {
            let a: Vec<_> = seq.row(r).collect();
            let b: Vec<_> = par.row(r).collect();
            assert_eq!(a, b, "row {r} differs");
        }
    }

    #[test]
    fn attack_matrix_is_sparse_like_the_papers() {
        // §II-B: 85 % zeros. Our library is wider, so expect at least
        // that sparsity on attack traffic.
        let set = FeatureSet::full();
        let payloads: Vec<Vec<u8>> = (0..30)
            .map(|i| format!("id=-1' or {i}={i} union select null,{i}-- -").into_bytes())
            .collect();
        let refs: Vec<&[u8]> = payloads.iter().map(|p| p.as_slice()).collect();
        let m = extract_matrix(&set, &refs, 2);
        assert!(m.sparsity() > 0.8, "sparsity {}", m.sparsity());
    }

    #[test]
    fn empty_inputs() {
        let set = FeatureSet::full();
        let m = extract_matrix(&set, &[], 4);
        assert_eq!(m.rows(), 0);
        let row = extract_row(&set, b"");
        assert!(row.is_empty());
    }
}
