//! Feature extraction: payloads → sparse sample×feature matrices.
//!
//! Payloads are first normalized with the five transformations of
//! §II-A. Extraction then makes **one pass** over the normalized
//! bytes with a set-level engine from
//! [`crate::prescan::CompiledFeatureSet`] to decide which features'
//! VMs to run (see [`crate::set::MatchMode`]):
//!
//! * **Fused** (default): the fused lazy-DFA scan reports the *exact*
//!   matching set for every fusable feature, so `count_all` runs only
//!   for features already known to match (plus the prescan-gated
//!   fallback list).
//! * **Prescan**: the literal Aho–Corasick pass yields a *superset*
//!   of the matching features; candidates then run their VMs.
//!
//! Either way the output is identical to running every feature —
//! verified by property test in `crate::proptests`. Matrix extraction
//! parallelizes over samples with crossbeam scoped threads (each
//! sample is independent).

use crate::set::{FeatureSet, MatchMode};
use psigene_http::normalize::{normalize_into, NormScratch};
use psigene_linalg::{CsrBuilder, CsrMatrix};
use psigene_regex::{CandidateSet, DfaCache, VmCache};
use psigene_telemetry::insight::TraceContext;
use psigene_telemetry::{Counter, Gauge};
use std::cell::RefCell;
use std::sync::{Arc, OnceLock};

/// Accounting for one or more extractions: how many feature VMs
/// actually ran versus were skipped by the set-level scan (literal
/// prescan or fused lazy-DFA).
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct ExtractStats {
    /// Feature VM invocations (`count_all` runs) that happened.
    pub vm_runs: u64,
    /// VM runs skipped: features the set-level scan proved (fused) or
    /// deemed (prescan literals absent) unnecessary.
    pub vm_runs_skipped: u64,
    /// Features the set-level engine flagged as candidates (excludes
    /// the always-run list, which never consults an engine).
    pub prefilter_candidates: u64,
    /// Fused features with at least one match (their VM runs are the
    /// only fused VM runs — the fused scan is exact).
    pub fused_matched: u64,
    /// Fused features whose VM run the fused scan proved unnecessary.
    pub fused_skipped: u64,
    /// VM runs for features outside the fused automaton (the
    /// fallback list), fused mode only.
    pub fallback_vm_runs: u64,
    /// Lazy-DFA transitions that had to be determinized.
    pub dfa_misses: u64,
    /// Lazy-DFA state-cache flushes forced by the state limit.
    pub dfa_flushes: u64,
    /// Bytes covered by the lazy DFA scan. Not "transitions taken":
    /// quiescent-state acceleration jumps over `dfa_skipped` of these
    /// without executing a transition each.
    pub dfa_bytes: u64,
    /// Bytes the DFA's quiescent-state accelerator jumped over
    /// (subset of `dfa_bytes`).
    pub dfa_skipped: u64,
    /// Peak lazy-DFA states resident after a scan (absorb keeps the
    /// maximum, not the sum).
    pub dfa_states: u64,
    /// Peak lazy-DFA states with an active acceleration plan (absorb
    /// keeps the maximum, like `dfa_states`).
    pub dfa_accel_states: u64,
}

impl ExtractStats {
    fn absorb(&mut self, other: ExtractStats) {
        self.vm_runs += other.vm_runs;
        self.vm_runs_skipped += other.vm_runs_skipped;
        self.prefilter_candidates += other.prefilter_candidates;
        self.fused_matched += other.fused_matched;
        self.fused_skipped += other.fused_skipped;
        self.fallback_vm_runs += other.fallback_vm_runs;
        self.dfa_misses += other.dfa_misses;
        self.dfa_flushes += other.dfa_flushes;
        self.dfa_bytes += other.dfa_bytes;
        self.dfa_skipped += other.dfa_skipped;
        self.dfa_states = self.dfa_states.max(other.dfa_states);
        self.dfa_accel_states = self.dfa_accel_states.max(other.dfa_accel_states);
    }

    /// Fraction of potential VM runs the set-level scan eliminated.
    pub fn skip_ratio(&self) -> f64 {
        let total = self.vm_runs + self.vm_runs_skipped;
        if total == 0 {
            0.0
        } else {
            self.vm_runs_skipped as f64 / total as f64
        }
    }

    /// Fraction of fused-feature VM runs the fused scan eliminated
    /// (the fused analog of [`ExtractStats::skip_ratio`]); 0 when the
    /// fused engine was not involved.
    pub fn fused_skip_ratio(&self) -> f64 {
        let total = self.fused_matched + self.fused_skipped;
        if total == 0 {
            0.0
        } else {
            self.fused_skipped as f64 / total as f64
        }
    }

    /// Fraction of lazy-DFA transitions served from the state cache;
    /// `None` when the DFA scanned no bytes. Skipped bytes take no
    /// transition, so the denominator is `dfa_bytes - dfa_skipped`
    /// (a scan that skipped everything is a perfect 1.0), and the
    /// value is clamped to `[0, 1]` — flush-forced re-determinization
    /// can miss more than once per byte.
    pub fn dfa_hit_ratio(&self) -> Option<f64> {
        if self.dfa_bytes == 0 {
            return None;
        }
        let taken = self.dfa_bytes - self.dfa_skipped;
        if taken == 0 {
            return Some(1.0);
        }
        Some((1.0 - self.dfa_misses as f64 / taken as f64).clamp(0.0, 1.0))
    }

    /// Fraction of scanned bytes the DFA accelerator jumped over;
    /// `None` when the DFA scanned no bytes.
    pub fn dfa_skip_ratio(&self) -> Option<f64> {
        if self.dfa_bytes == 0 {
            None
        } else {
            Some(self.dfa_skipped as f64 / self.dfa_bytes as f64)
        }
    }
}

/// Pre-resolved telemetry handles for the extraction hot path
/// (string-keyed registry lookups happen once per process).
struct ExtractMetrics {
    regex_evals: Arc<Counter>,
    prefilter_candidates: Arc<Counter>,
    vm_runs_skipped: Arc<Counter>,
    rows_extracted: Arc<Counter>,
    skip_ratio: Arc<Gauge>,
    matrix_fill_rate: Arc<Gauge>,
    fused_skip_ratio: Arc<Gauge>,
    fused_fallback_vm_runs: Arc<Counter>,
    fused_cache_states: Arc<Gauge>,
    fused_cache_hit_ratio: Arc<Gauge>,
    fused_cache_flushes: Arc<Counter>,
    accel_states: Arc<Gauge>,
    accel_bytes_skipped: Arc<Counter>,
    accel_skip_ratio: Arc<Gauge>,
}

fn metrics() -> &'static ExtractMetrics {
    static METRICS: OnceLock<ExtractMetrics> = OnceLock::new();
    METRICS.get_or_init(|| {
        let telemetry = psigene_telemetry::global();
        ExtractMetrics {
            regex_evals: telemetry.counter("features.regex_evals"),
            prefilter_candidates: telemetry.counter("features.prefilter_candidates"),
            vm_runs_skipped: telemetry.counter("features.vm_runs_skipped"),
            rows_extracted: telemetry.counter("features.rows_extracted"),
            skip_ratio: telemetry.gauge("features.vm_skip_ratio"),
            matrix_fill_rate: telemetry.gauge("features.matrix_fill_rate"),
            fused_skip_ratio: telemetry.gauge("features.fused_skip_ratio"),
            fused_fallback_vm_runs: telemetry.counter("regex.fused.fallback_vm_runs"),
            fused_cache_states: telemetry.gauge("regex.fused.cache_states"),
            fused_cache_hit_ratio: telemetry.gauge("regex.fused.cache_hit_ratio"),
            fused_cache_flushes: telemetry.counter("regex.fused.cache_flushes"),
            accel_states: telemetry.gauge("regex.fused.accel_states"),
            accel_bytes_skipped: telemetry.counter("regex.fused.accel_bytes_skipped"),
            accel_skip_ratio: telemetry.gauge("regex.fused.accel_skip_ratio"),
        }
    })
}

/// Accounts extraction work in the global registry:
/// `features.regex_evals` counts VM invocations that *actually
/// happened* (not `rows × features` — the set-level scan skips most
/// of those), with the skipped complement in
/// `features.vm_runs_skipped` and the running skip fraction in
/// `features.vm_skip_ratio`. Fused-mode extractions additionally feed
/// `features.fused_skip_ratio` and the `regex.fused.*` family (state
/// cache occupancy/hit ratio/flushes, fallback VM runs, accelerated
/// state count, and bytes/ratio jumped by quiescent-state skipping).
fn record_stats(stats: &ExtractStats, rows: u64) {
    let m = metrics();
    m.regex_evals.add(stats.vm_runs);
    m.prefilter_candidates.add(stats.prefilter_candidates);
    m.vm_runs_skipped.add(stats.vm_runs_skipped);
    m.rows_extracted.add(rows);
    m.skip_ratio.set(stats.skip_ratio());
    if stats.fused_matched + stats.fused_skipped > 0 {
        m.fused_skip_ratio.set(stats.fused_skip_ratio());
        m.fused_fallback_vm_runs.add(stats.fallback_vm_runs);
        m.fused_cache_states.set(stats.dfa_states as f64);
        m.fused_cache_flushes.add(stats.dfa_flushes);
        if let Some(hit) = stats.dfa_hit_ratio() {
            m.fused_cache_hit_ratio.set(hit);
        }
        // Peak, not last-window: each thread owns a DfaCache, and on
        // traffic that rarely triggers accel analysis most windows
        // would truthfully report 0 and mask the threads that did
        // accelerate.
        let accel_states = stats.dfa_accel_states as f64;
        if accel_states > m.accel_states.get() {
            m.accel_states.set(accel_states);
        }
        m.accel_bytes_skipped.add(stats.dfa_skipped);
        if let Some(skip) = stats.dfa_skip_ratio() {
            m.accel_skip_ratio.set(skip);
        }
    }
}

/// How many buffered single-row stats accumulate in the thread-local
/// scratch before being flushed to the global registry. Per-row
/// recording costs one atomic op per metric (~a dozen per payload),
/// which measurably taxes the sub-microsecond fused path; batching
/// trades bounded counter lag for removing that tax. Batch entry
/// points ([`extract_matrix`] and friends) still record immediately.
const METRICS_FLUSH_ROWS: u64 = 32;

/// Per-thread working memory for the whole extraction hot path: the
/// normalization double buffer, the candidate bitset (one per
/// extraction, written by the fused scan and the literal prescans
/// alike), the lazy-DFA state cache (warm across requests — the whole
/// point of lazy determinization), the shared VM scratch, a pooled
/// sparse-row buffer for `extract_row`, and the buffered telemetry
/// window (flushed every [`METRICS_FLUSH_ROWS`] rows, on
/// [`flush_extract_metrics`], and when the thread exits). One warm
/// scratch makes a steady-state extraction touch the allocator only
/// for the row it returns (and not at all on the dense `_into`
/// paths).
#[derive(Default)]
struct ScanScratch {
    norm: NormScratch,
    bits: CandidateSet,
    dfa: DfaCache,
    vm: VmCache,
    row: Vec<(usize, f64)>,
    pending: ExtractStats,
    pending_rows: u64,
}

impl ScanScratch {
    /// Absorbs one row's stats into the pending window, flushing it to
    /// the registry when full.
    fn buffer_stats(&mut self, stats: ExtractStats) {
        self.pending.absorb(stats);
        self.pending_rows += 1;
        if self.pending_rows >= METRICS_FLUSH_ROWS {
            self.flush_stats();
        }
    }

    fn flush_stats(&mut self) {
        if self.pending_rows > 0 {
            record_stats(&self.pending, self.pending_rows);
            self.pending = ExtractStats::default();
            self.pending_rows = 0;
        }
    }
}

impl Drop for ScanScratch {
    /// A dying thread publishes whatever its window still holds, so
    /// short-lived worker threads never lose rows.
    fn drop(&mut self) {
        self.flush_stats();
    }
}

/// Publishes any per-row telemetry still buffered in this thread's
/// scratch window (see [`METRICS_FLUSH_ROWS`]). Counters lag the
/// truth by at most one window; call this before reading a snapshot
/// that must include rows this thread just extracted.
pub fn flush_extract_metrics() {
    SCRATCH.with(|cell| cell.borrow_mut().flush_stats());
}

thread_local! {
    /// Per-thread scratch; the `extract_*` entry points are the only
    /// users, so extraction allocates neither the normalization
    /// buffers nor the bitset nor the DFA cache per payload.
    static SCRATCH: RefCell<ScanScratch> = RefCell::new(ScanScratch::default());
}

/// Normalizes `payload` into the thread-local scratch and runs every
/// due feature over it via [`count_norm_traced`]. The single accessor
/// of `SCRATCH`: normalization borrows the scratch's double buffer
/// while counting borrows the engine caches — disjoint fields, one
/// `RefCell` borrow.
fn extract_traced(
    set: &FeatureSet,
    payload: &[u8],
    emit: impl FnMut(usize, usize),
    mut trace: Option<&mut TraceContext>,
) -> ExtractStats {
    SCRATCH.with(|cell| {
        let scratch = &mut *cell.borrow_mut();
        let ScanScratch {
            norm,
            bits,
            dfa,
            vm,
            ..
        } = scratch;
        let span = trace.as_mut().map(|t| t.begin("features.normalize"));
        let normalized = normalize_into(payload, norm);
        if let (Some(t), Some(s)) = (trace.as_mut(), span) {
            t.end(s);
        }
        count_norm_traced(set, normalized, emit, trace, bits, dfa, vm)
    })
}

/// Runs every due feature over the already-normalized `norm`,
/// emitting `(feature id, count)` in ascending id order (including
/// zero counts for candidates that the VM then rejects), and returns
/// what ran versus what the prescan skipped. Optional per-stage spans
/// (`features.prescan`, `features.vms`) are recorded into a
/// request-scoped trace; with `trace = None` the span bookkeeping
/// compiles down to nothing on the hot path.
fn count_norm_traced(
    set: &FeatureSet,
    norm: &[u8],
    mut emit: impl FnMut(usize, usize),
    mut trace: Option<&mut TraceContext>,
    bits: &mut CandidateSet,
    dfa: &mut DfaCache,
    vm: &mut VmCache,
) -> ExtractStats {
    let features = set.features();
    if !set.prescan_enabled() {
        // Forced always-run path: one VM run (behind its private
        // prefilter) per feature — the equivalence oracle. The VM
        // scratch is still shared across features AND across payloads
        // (it lives in the thread-local scratch): `count_with` is
        // result-identical to `count`.
        let span = trace.as_mut().map(|t| t.begin("features.vms"));
        for f in features {
            emit(f.id, f.count_with(norm, vm));
        }
        if let (Some(t), Some(s)) = (trace.as_mut(), span) {
            t.end(s);
        }
        return ExtractStats {
            vm_runs: features.len() as u64,
            ..ExtractStats::default()
        };
    }
    let compiled = set.compiled();
    // The candidate stage keeps its span name across modes so
    // traces stay comparable (and dashboards keep working): in
    // fused mode "features.prescan" covers the fused DFA scan
    // plus the fallback literal scan.
    let span = trace.as_mut().map(|t| t.begin("features.prescan"));
    let fused_report = if set.match_mode() == MatchMode::Fused {
        compiled.fused_candidates_into(norm, bits, dfa)
    } else {
        None
    };
    let candidates = match fused_report {
        Some(_) => 0,
        // Prescan mode, or a library where nothing fused.
        None => compiled.candidates_into(norm, bits),
    };
    if let (Some(t), Some(s)) = (trace.as_mut(), span) {
        t.end(s);
    }
    let span = trace.as_mut().map(|t| t.begin("features.vms"));
    let mut vm_runs = 0u64;
    if fused_report.is_some() {
        // Fused bits are exact matches, so for fused features the
        // per-feature prefilter can only re-confirm what the DFA
        // already proved — skip it and go straight to counting.
        // Fallback (unfused) candidates keep their prefilter: for
        // them the bit only means "literal seen", not "matches".
        for id in bits.iter() {
            let f = &features[id];
            let n = if compiled.is_fused(id) {
                f.count_known_match(norm, vm)
            } else {
                f.count_with(norm, vm)
            };
            emit(id, n);
            vm_runs += 1;
        }
    } else {
        for id in bits.iter() {
            emit(id, features[id].count_with(norm, vm));
            vm_runs += 1;
        }
    }
    if let (Some(t), Some(s)) = (trace.as_mut(), span) {
        t.end(s);
    }
    match fused_report {
        Some(r) => ExtractStats {
            vm_runs,
            vm_runs_skipped: features.len() as u64 - vm_runs,
            prefilter_candidates: (r.fused_matched + r.fallback_candidates) as u64,
            fused_matched: r.fused_matched as u64,
            fused_skipped: (compiled.fused_features() - r.fused_matched) as u64,
            fallback_vm_runs: vm_runs - r.fused_matched as u64,
            dfa_misses: r.stats.misses as u64,
            dfa_flushes: r.stats.flushes as u64,
            dfa_bytes: r.stats.bytes,
            dfa_skipped: r.stats.skipped,
            dfa_states: r.stats.states as u64,
            dfa_accel_states: r.stats.accel_states as u64,
        },
        None => ExtractStats {
            vm_runs,
            vm_runs_skipped: (compiled.prefiltered_features() - candidates) as u64,
            prefilter_candidates: candidates as u64,
            ..ExtractStats::default()
        },
    }
}

/// Extracts the feature vector of one payload (sparse, as
/// `(column, count)` pairs).
pub fn extract_row(set: &FeatureSet, payload: &[u8]) -> Vec<(usize, f64)> {
    let (row, stats) = extract_row_uncounted(set, payload);
    record_stats_buffered(stats);
    row
}

/// Buffers one row's stats in the thread-local window instead of
/// paying the registry's atomics on every payload.
fn record_stats_buffered(stats: ExtractStats) {
    SCRATCH.with(|cell| cell.borrow_mut().buffer_stats(stats));
}

fn extract_row_uncounted(set: &FeatureSet, payload: &[u8]) -> (Vec<(usize, f64)>, ExtractStats) {
    SCRATCH.with(|cell| {
        let scratch = &mut *cell.borrow_mut();
        let ScanScratch {
            norm,
            bits,
            dfa,
            vm,
            row,
            ..
        } = scratch;
        row.clear();
        let normalized = normalize_into(payload, norm);
        let stats = count_norm_traced(
            set,
            normalized,
            |id, c| {
                if c > 0 {
                    row.push((id, c as f64));
                }
            },
            None,
            bits,
            dfa,
            vm,
        );
        // Accumulate into the pooled row, then clone out one
        // exact-size vector: the only allocation on this path.
        (row.clone(), stats)
    })
}

/// Extracts a dense `f64` vector (for detection-time scoring against
/// a specific signature's features).
pub fn extract_dense(set: &FeatureSet, payload: &[u8]) -> Vec<f64> {
    let mut out = Vec::new();
    extract_dense_into(set, payload, &mut out);
    out
}

/// Like [`extract_dense`] but writes into a caller-owned buffer,
/// so batch scoring (one vector per request) reuses a single
/// allocation across the whole batch. The buffer is cleared and
/// resized to `set.len()`.
pub fn extract_dense_into(set: &FeatureSet, payload: &[u8], out: &mut Vec<f64>) {
    out.clear();
    out.resize(set.len(), 0.0);
    let stats = extract_traced(set, payload, |id, c| out[id] = c as f64, None);
    record_stats_buffered(stats);
}

/// Like [`extract_dense_into`] but recording per-stage spans
/// (`features.normalize`, `features.prescan`, `features.vms`) into a
/// request-scoped trace. Produces byte-identical output to the
/// untraced path (pinned by unit test) — tracing observes, never
/// alters, the extraction.
pub fn extract_dense_into_traced(
    set: &FeatureSet,
    payload: &[u8],
    out: &mut Vec<f64>,
    trace: &mut TraceContext,
) {
    out.clear();
    out.resize(set.len(), 0.0);
    let stats = extract_traced(set, payload, |id, c| out[id] = c as f64, Some(trace));
    record_stats_buffered(stats);
}

/// Extracts the full sample×feature matrix, parallelized over
/// `threads` workers (1 = sequential).
pub fn extract_matrix(set: &FeatureSet, payloads: &[&[u8]], threads: usize) -> CsrMatrix {
    let threads = threads.max(1);
    if threads == 1 || payloads.len() < 2 * threads {
        let mut b = CsrBuilder::new(set.len());
        let mut stats = ExtractStats::default();
        for p in payloads {
            let (row, s) = extract_row_uncounted(set, p);
            stats.absorb(s);
            b.push_row(&row);
        }
        let m = b.build();
        record_matrix_telemetry(&m, &stats);
        return m;
    }
    // Prime the prescan before fanning out so workers share the
    // already-built automaton instead of racing to build their own.
    if set.prescan_enabled() {
        set.compiled();
    }
    // Chunk the payloads; each worker extracts its slice, results are
    // reassembled in order.
    let chunk = payloads.len().div_ceil(threads);
    type WorkerOut = (Vec<Vec<(usize, f64)>>, ExtractStats);
    let mut results: Vec<WorkerOut> = Vec::new();
    crossbeam::scope(|scope| {
        let mut handles = Vec::new();
        for ch in payloads.chunks(chunk) {
            handles.push(scope.spawn(move |_| {
                let mut stats = ExtractStats::default();
                let rows = ch
                    .iter()
                    .map(|p| {
                        let (row, s) = extract_row_uncounted(set, p);
                        stats.absorb(s);
                        row
                    })
                    .collect::<Vec<_>>();
                (rows, stats)
            }));
        }
        for h in handles {
            results.push(h.join().expect("extraction worker panicked"));
        }
    })
    .expect("crossbeam scope");
    let mut b = CsrBuilder::new(set.len());
    let mut stats = ExtractStats::default();
    for (part, s) in results {
        stats.absorb(s);
        for row in part {
            b.push_row(&row);
        }
    }
    let m = b.build();
    record_matrix_telemetry(&m, &stats);
    m
}

/// Accounts one extracted matrix in the global registry: actual VM
/// invocations (not `rows × features`), the prescan skip ratio, and
/// the fill rate as the fraction of nonzero cells.
fn record_matrix_telemetry(m: &CsrMatrix, stats: &ExtractStats) {
    record_stats(stats, m.rows() as u64);
    let cells = m.rows() * m.cols();
    if cells > 0 {
        metrics()
            .matrix_fill_rate
            .set(m.nnz() as f64 / cells as f64);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn union_select_payload_lights_up_features() {
        let set = FeatureSet::full();
        let row = extract_row(&set, b"id=-1+UNION+SELECT+1,2,concat(version(),0x3a),4--+-");
        assert!(!row.is_empty());
        // At least the union and select reserved words must count.
        let names: Vec<&str> = row
            .iter()
            .map(|&(c, _)| set.features()[c].name.as_str())
            .collect();
        assert!(names.contains(&"kw:union"), "{names:?}");
        assert!(names.contains(&"kw:select"), "{names:?}");
        assert!(names.iter().any(|n| n.starts_with("sig:")), "{names:?}");
    }

    #[test]
    fn benign_payload_is_nearly_silent() {
        let set = FeatureSet::full();
        let row = extract_row(&set, b"page=2&sort=asc&term=2012");
        // A couple of incidental hits are fine (`=`-style features);
        // the row must be far sparser than an attack's.
        assert!(row.len() < 10, "benign row too hot: {row:?}");
    }

    #[test]
    fn counts_not_flags() {
        let set = FeatureSet::full();
        let row = extract_row(&set, b"q=char(58),char(58),char(58)");
        let char_count = row
            .iter()
            .find(|&&(c, _)| set.features()[c].name == "sig:char\\s*\\(")
            .map(|&(_, v)| v);
        assert_eq!(char_count, Some(3.0));
    }

    #[test]
    fn parallel_matches_sequential() {
        let set = FeatureSet::full();
        let payloads: Vec<Vec<u8>> = (0..40)
            .map(|i| format!("id={i}+union+select+{i},version()--").into_bytes())
            .collect();
        let refs: Vec<&[u8]> = payloads.iter().map(|p| p.as_slice()).collect();
        let seq = extract_matrix(&set, &refs, 1);
        let par = extract_matrix(&set, &refs, 4);
        assert_eq!(seq.rows(), par.rows());
        assert_eq!(seq.nnz(), par.nnz());
        for r in 0..seq.rows() {
            let a: Vec<_> = seq.row(r).collect();
            let b: Vec<_> = par.row(r).collect();
            assert_eq!(a, b, "row {r} differs");
        }
    }

    #[test]
    fn all_match_modes_agree() {
        let fused = FeatureSet::full();
        let prescan = fused.with_match_mode(MatchMode::Prescan);
        let naive = fused.with_match_mode(MatchMode::Naive);
        let payloads: &[&[u8]] = &[
            b"id=-1+union+select+1,2,3--",
            b"page=2&sort=asc&term=2012",
            b"q=char(58),char(58)",
            b"",
            b"%27%20OR%201=1--",
        ];
        for p in payloads {
            let row = extract_row(&fused, p);
            assert_eq!(row, extract_row(&prescan, p), "{p:?}");
            assert_eq!(row, extract_row(&naive, p), "{p:?}");
            let dense = extract_dense(&fused, p);
            assert_eq!(dense, extract_dense(&prescan, p), "{p:?}");
            assert_eq!(dense, extract_dense(&naive, p), "{p:?}");
        }
    }

    #[test]
    fn fused_mode_runs_vms_only_for_matches_plus_fallback() {
        let set = FeatureSet::full();
        assert_eq!(set.match_mode(), MatchMode::Fused);
        let (row, stats) =
            extract_row_uncounted(&set, b"id=-1+union+select+1,2,concat(version(),0x3a),4--+-");
        // Every fused VM run produced a match, so the row cannot be
        // smaller than the fused-match count.
        assert_eq!(stats.fused_matched + stats.fallback_vm_runs, stats.vm_runs);
        assert!(row.len() as u64 >= stats.fused_matched);
        assert!(stats.dfa_bytes > 0, "{stats:?}");
        assert!(
            stats.fused_skip_ratio() > 0.8,
            "attack fused skip ratio only {:.2} ({stats:?})",
            stats.fused_skip_ratio()
        );
        // Fused mode beats the prescan's candidate count on attack
        // traffic: exact matches ≤ literal candidates.
        let (_, prescan_stats) = extract_row_uncounted(
            &set.with_match_mode(MatchMode::Prescan),
            b"id=-1+union+select+1,2,concat(version(),0x3a),4--+-",
        );
        assert!(
            stats.vm_runs <= prescan_stats.vm_runs,
            "fused ran more VMs ({}) than prescan ({})",
            stats.vm_runs,
            prescan_stats.vm_runs
        );
    }

    #[test]
    fn acceleration_keeps_rows_identical_on_the_full_library() {
        // The full 439-feature automaton rarely parks on English-like
        // benign text (unanchored signature fragments keep the pending
        // set churning), so this test pins only the invariant that
        // matters at this layer: acceleration on/off is row-identical,
        // and the accel counters stay well-formed.
        let set = FeatureSet::full();
        let off = set.with_acceleration(false);
        assert!(set.acceleration_enabled());
        assert!(!off.acceleration_enabled());
        for payload in [
            b"page=2&sort=asc&term=winter jackets and boots for the whole family pleas".as_slice(),
            b"id=-1+union+select+1,2,concat(version(),0x3a),4--+-",
            b"ts=1700000000&sig=3a2b1c4d5e6f&limit=100&offset=2400",
        ] {
            // Warm each engine right before its measured pass — the
            // two sets are distinct automata, and switching rebinds
            // (cold-clears) the thread-local DFA cache.
            let _ = extract_row_uncounted(&set, payload);
            let (row_on, on_stats) = extract_row_uncounted(&set, payload);
            let _ = extract_row_uncounted(&off, payload);
            let (row_off, off_stats) = extract_row_uncounted(&off, payload);
            assert_eq!(row_on, row_off, "{payload:?}");
            assert_eq!(off_stats.dfa_skipped, 0, "{off_stats:?}");
            assert_eq!(off_stats.dfa_accel_states, 0, "{off_stats:?}");
            assert!(on_stats.dfa_skipped <= on_stats.dfa_bytes);
            for s in [&on_stats, &off_stats] {
                assert!(
                    s.dfa_hit_ratio().is_some_and(|r| (0.0..=1.0).contains(&r)),
                    "{s:?}"
                );
            }
        }
    }

    #[test]
    fn acceleration_skips_bytes_where_the_automaton_parks() {
        // A keyword-only library *does* park: no keyword can start
        // mid-run on a non-letter byte, so the empty pending state
        // self-loops across digit/punctuation runs under both
        // word-context variants and earns a dense escape plan.
        let kw: Vec<_> = FeatureSet::full()
            .features()
            .iter()
            .filter(|f| f.source == crate::sources::FeatureSource::ReservedWords)
            .cloned()
            .collect();
        assert!(!kw.is_empty());
        let set = FeatureSet::from_features(kw.clone());
        let off = set.with_acceleration(false);
        let payload: &[u8] = b"ts=1700000000&sig=3a2b1c4d5e6f0000&limit=100&offset=2400";
        let _ = extract_row_uncounted(&set, payload);
        let (row_on, on_stats) = extract_row_uncounted(&set, payload);
        let _ = extract_row_uncounted(&off, payload);
        let (row_off, off_stats) = extract_row_uncounted(&off, payload);
        assert_eq!(row_on, row_off);
        assert_eq!(off_stats.dfa_skipped, 0, "{off_stats:?}");
        assert!(on_stats.dfa_skipped > 0, "{on_stats:?}");
        assert!(on_stats.dfa_accel_states > 0, "{on_stats:?}");
        assert!(on_stats.dfa_skip_ratio().unwrap() > 0.0);
        assert!(on_stats
            .dfa_hit_ratio()
            .is_some_and(|r| (0.0..=1.0).contains(&r)));
    }

    #[test]
    fn warm_dfa_cache_stops_missing() {
        let set = FeatureSet::full();
        let payload = b"id=-1+union+select+1,2,3--";
        let _ = extract_row_uncounted(&set, payload);
        let (_, warm) = extract_row_uncounted(&set, payload);
        assert_eq!(warm.dfa_misses, 0, "{warm:?}");
        assert_eq!(warm.dfa_hit_ratio(), Some(1.0));
    }

    #[test]
    fn prescan_skips_most_vm_runs_on_benign_traffic() {
        let set = FeatureSet::full();
        let (_, stats) = extract_row_uncounted(&set, b"page=2&sort=asc&term=2012");
        assert!(
            stats.skip_ratio() > 0.5,
            "benign skip ratio only {:.2} ({stats:?})",
            stats.skip_ratio()
        );
        // The forced path reports zero skips and one run per feature.
        let (_, naive) = extract_row_uncounted(&set.with_prescan(false), b"page=2");
        assert_eq!(naive.vm_runs, set.len() as u64);
        assert_eq!(naive.vm_runs_skipped, 0);
    }

    #[test]
    fn regex_evals_counts_actual_vm_runs() {
        let set = FeatureSet::full();
        // Per-row invariant: runs + skips account for every feature,
        // and benign traffic actually skips (the old accounting
        // charged rows × features unconditionally).
        let payloads: &[&[u8]] = &[b"page=2&sort=asc", b"q=summer+housing"];
        let mut total = ExtractStats::default();
        for p in payloads {
            let (_, stats) = extract_row_uncounted(&set, p);
            assert_eq!(stats.vm_runs + stats.vm_runs_skipped, set.len() as u64);
            assert!(stats.vm_runs < set.len() as u64, "nothing skipped on {p:?}");
            total.absorb(stats);
        }
        // The counters move by at least this matrix's work (the
        // registry is process-wide, so concurrent tests may add more).
        let telemetry = psigene_telemetry::global();
        let evals_before = telemetry.counter("features.regex_evals").get();
        let skipped_before = telemetry.counter("features.vm_runs_skipped").get();
        extract_matrix(&set, payloads, 1);
        let evals = telemetry.counter("features.regex_evals").get() - evals_before;
        let skipped = telemetry.counter("features.vm_runs_skipped").get() - skipped_before;
        assert!(evals >= total.vm_runs, "{evals} < {}", total.vm_runs);
        assert!(skipped >= total.vm_runs_skipped);
    }

    #[test]
    fn traced_extraction_is_identical_and_records_stages() {
        let set = FeatureSet::full();
        for payload in [
            b"id=-1+union+select+1,2,3--".as_slice(),
            b"page=2&sort=asc",
            b"",
        ] {
            let plain = extract_dense(&set, payload);
            let mut traced = Vec::new();
            let mut trace = TraceContext::new(1);
            extract_dense_into_traced(&set, payload, &mut traced, &mut trace);
            assert_eq!(plain, traced, "{payload:?}");
            let t = trace.finish();
            let names: Vec<&str> = t.spans.iter().map(|s| s.name).collect();
            assert!(names.contains(&"features.normalize"), "{names:?}");
            assert!(names.contains(&"features.prescan"), "{names:?}");
            assert!(names.contains(&"features.vms"), "{names:?}");
        }
        // The forced always-run path skips the prescan span.
        let off = set.with_prescan(false);
        let mut out = Vec::new();
        let mut trace = TraceContext::new(2);
        extract_dense_into_traced(&off, b"id=1", &mut out, &mut trace);
        let names: Vec<&str> = trace.finish().spans.iter().map(|s| s.name).collect();
        assert!(!names.contains(&"features.prescan"), "{names:?}");
        assert!(names.contains(&"features.vms"), "{names:?}");
    }

    #[test]
    fn attack_matrix_is_sparse_like_the_papers() {
        // §II-B: 85 % zeros. Our library is wider, so expect at least
        // that sparsity on attack traffic.
        let set = FeatureSet::full();
        let payloads: Vec<Vec<u8>> = (0..30)
            .map(|i| format!("id=-1' or {i}={i} union select null,{i}-- -").into_bytes())
            .collect();
        let refs: Vec<&[u8]> = payloads.iter().map(|p| p.as_slice()).collect();
        let m = extract_matrix(&set, &refs, 2);
        assert!(m.sparsity() > 0.8, "sparsity {}", m.sparsity());
    }

    #[test]
    fn empty_inputs() {
        let set = FeatureSet::full();
        let m = extract_matrix(&set, &[], 4);
        assert_eq!(m.rows(), 0);
        let row = extract_row(&set, b"");
        assert!(row.is_empty());
    }
}
