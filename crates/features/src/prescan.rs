//! The set-level literal prescan: one pass over the normalized
//! payload decides which features' VMs need to run at all.
//!
//! pSigene's operational phase (§IV of the paper) evaluates every
//! request against the full feature library before scoring
//! signatures, and the overwhelming majority of requests — all
//! benign traffic, in the paper's measurements — match almost
//! nothing. Running each feature's own prefilter still costs one
//! haystack traversal *per feature*; a 400-feature library scans the
//! payload ~400 times. [`CompiledFeatureSet`] collapses those scans
//! into one: every feature's required literals (from its
//! [`psigene_regex::Prefilter`]) are folded into a single
//! Aho–Corasick automaton, and a single pass produces the
//! candidate-feature bitset. Features whose pattern yields no literal
//! requirement go on an **always-run** list, so the candidate set is
//! always a superset of the features that could match — soundness is
//! preserved by construction and verified by property test in
//! `crate::proptests`.

use crate::feature::Feature;
use psigene_regex::{
    CandidateSet, DfaCache, FuseOutcome, FusedScanStats, FusedSet, FusedSetBuilder, MultiLiteral,
    MultiLiteralBuilder,
};

/// The compiled set-level engines for one feature set: the literal
/// prescan (candidate superset in one pass), and the fused lazy-DFA
/// automaton (exact match set in one pass) with its VM-fallback
/// complement.
#[derive(Clone)]
pub struct CompiledFeatureSet {
    /// Automaton over every prefilterable feature's literals; `None`
    /// when no feature produced a literal requirement.
    engine: Option<MultiLiteral>,
    /// Feature ids with no derivable literal requirement, ascending.
    always_run: Vec<u32>,
    /// Bitset with exactly the always-run ids pre-set; cloned into
    /// the scan scratch so one ascending bitset walk visits both the
    /// always-run features and the literal candidates in id order.
    base: CandidateSet,
    /// Number of features covered by the automaton (the population
    /// the skip ratio is measured against).
    prefiltered: usize,
    /// Total features in the owning set.
    n_features: usize,
    /// Fused multi-pattern automaton over every fusable feature;
    /// `None` when nothing fused. Pattern ids are feature ids, so the
    /// fused scan and the fallback prescan write disjoint ids into
    /// one shared [`CandidateSet`].
    fused: Option<FusedSet>,
    /// Features inside the fused automaton.
    fused_count: usize,
    /// Feature ids the fuser refused (kept on the per-feature VM),
    /// ascending, with the refusal reason.
    fallback: Vec<(u32, &'static str)>,
    /// Literal prescan restricted to the fallback features.
    fallback_engine: Option<MultiLiteral>,
    /// Pre-set bits for fallback features with no literal requirement
    /// (the fused-path analog of `base`).
    fallback_base: CandidateSet,
    /// Fallback features covered by `fallback_engine`.
    fallback_prefiltered: usize,
    /// Per-feature: true when the feature rides the fused automaton
    /// (its candidate bit, when set, is an exact "this feature
    /// matches", so its VM run may skip the redundant prefilter gate).
    fused_mask: Vec<bool>,
}

/// What one fused-path candidate scan did; feeds the fused-engine
/// telemetry in `crate::extract`.
#[derive(Debug, Clone, Copy, Default)]
pub struct FusedScanReport {
    /// Fused features with at least one match — the *exact* set, so
    /// their VM runs all produce nonzero counts.
    pub fused_matched: usize,
    /// Fallback features flagged by the fallback literal engine
    /// (excludes the fallback always-run list).
    pub fallback_candidates: usize,
    /// Lazy-DFA counters for the scan itself.
    pub stats: FusedScanStats,
}

impl CompiledFeatureSet {
    /// Builds the prescan for `features` (ids must be their indices,
    /// which [`crate::FeatureSet`] guarantees) with quiescent-state
    /// acceleration enabled.
    pub fn build(features: &[Feature]) -> CompiledFeatureSet {
        CompiledFeatureSet::build_with(features, true)
    }

    /// [`CompiledFeatureSet::build`] with explicit control over lazy-
    /// DFA acceleration; `accelerate: false` exists for A/B
    /// benchmarking and the accel-equivalence proptests.
    pub fn build_with(features: &[Feature], accelerate: bool) -> CompiledFeatureSet {
        let n = features.len();
        let mut builder = MultiLiteralBuilder::new();
        let mut always_run = Vec::new();
        let mut base = CandidateSet::new(n);
        let mut prefiltered = 0usize;
        for (i, f) in features.iter().enumerate() {
            match f.regex().prefilter() {
                Some(pf) if !pf.literals().is_empty() => {
                    prefiltered += 1;
                    for lit in pf.literals() {
                        builder.add(i as u32, lit);
                    }
                }
                _ => {
                    always_run.push(i as u32);
                    base.insert(i);
                }
            }
        }
        let engine = if builder.is_empty() {
            None
        } else {
            Some(builder.build())
        };
        // Fused automaton: every pattern the fuser accepts, under the
        // feature's own id. Refused patterns keep the literal-prescan
        // treatment among themselves; the two id populations are
        // disjoint, so both engines share one output bitset.
        let mut fuser = FusedSetBuilder::new().accelerate(accelerate);
        let mut fallback: Vec<(u32, &'static str)> = Vec::new();
        let mut fallback_builder = MultiLiteralBuilder::new();
        let mut fallback_base = CandidateSet::new(n);
        let mut fallback_prefiltered = 0usize;
        let mut fused_mask = vec![true; n];
        for (i, f) in features.iter().enumerate() {
            // Features compile case-insensitively (see
            // `crate::feature::Feature::new`); the fused automaton
            // must match that.
            let outcome = fuser
                .add(i as u32, &f.pattern, true)
                .expect("feature pattern already compiled once");
            if let FuseOutcome::Fallback(reason) = outcome {
                fused_mask[i] = false;
                fallback.push((i as u32, reason));
                match f.regex().prefilter() {
                    Some(pf) if !pf.literals().is_empty() => {
                        fallback_prefiltered += 1;
                        for lit in pf.literals() {
                            fallback_builder.add(i as u32, lit);
                        }
                    }
                    _ => {
                        fallback_base.insert(i);
                    }
                }
            }
        }
        let fused_count = fuser.len();
        let fused = fuser.build();
        let fallback_engine = if fallback_builder.is_empty() {
            None
        } else {
            Some(fallback_builder.build())
        };
        CompiledFeatureSet {
            engine,
            always_run,
            base,
            prefiltered,
            n_features: n,
            fused,
            fused_count,
            fallback,
            fallback_engine,
            fallback_base,
            fallback_prefiltered,
            fused_mask,
        }
    }

    /// Fills `bits` with the features due a VM run on `norm`: the
    /// always-run list plus every feature with a literal occurrence.
    /// Returns how many features the literal engine flagged (the
    /// candidates proper, excluding the always-run list).
    pub fn candidates_into(&self, norm: &[u8], bits: &mut CandidateSet) -> usize {
        bits.clone_from(&self.base);
        match &self.engine {
            None => 0,
            Some(e) => e.scan_into(norm, bits),
        }
    }

    /// Fills `bits` with the features due a VM run on `norm` using
    /// the fused engine: the exact fused-feature match set plus the
    /// fallback features' prescan candidates (always-run included).
    /// Returns `None` when no feature fused — the caller should take
    /// the plain prescan path instead.
    pub fn fused_candidates_into(
        &self,
        norm: &[u8],
        bits: &mut CandidateSet,
        dfa: &mut DfaCache,
    ) -> Option<FusedScanReport> {
        let fused = self.fused.as_ref()?;
        bits.clone_from(&self.fallback_base);
        let fallback_candidates = match &self.fallback_engine {
            None => 0,
            Some(e) => e.scan_into(norm, bits),
        };
        let stats = fused.scan_into(norm, dfa, bits);
        Some(FusedScanReport {
            fused_matched: stats.matched as usize,
            fallback_candidates,
            stats,
        })
    }

    /// Feature ids that run unconditionally (no literal requirement).
    pub fn always_run(&self) -> &[u32] {
        &self.always_run
    }

    /// The fused multi-pattern automaton, when one exists.
    pub fn fused(&self) -> Option<&FusedSet> {
        self.fused.as_ref()
    }

    /// Features inside the fused automaton.
    pub fn fused_features(&self) -> usize {
        self.fused_count
    }

    /// True when feature `id` rides the fused automaton — its
    /// candidate bit is then an exact match indicator, not a
    /// superset guess.
    pub fn is_fused(&self, id: usize) -> bool {
        self.fused.is_some() && self.fused_mask.get(id).copied().unwrap_or(false)
    }

    /// Features the fuser refused, with the per-feature reason; these
    /// stay on the per-feature VM behind the fallback prescan.
    pub fn fallback_features(&self) -> &[(u32, &'static str)] {
        &self.fallback
    }

    /// Fallback features covered by the fallback literal engine (the
    /// population the fallback prescan can skip).
    pub fn fallback_prefiltered(&self) -> usize {
        self.fallback_prefiltered
    }

    /// Number of features the literal engine covers (i.e. skippable).
    pub fn prefiltered_features(&self) -> usize {
        self.prefiltered
    }

    /// Total features in the owning set.
    pub fn feature_count(&self) -> usize {
        self.n_features
    }

    /// The shared literal automaton, when one exists.
    pub fn engine(&self) -> Option<&MultiLiteral> {
        self.engine.as_ref()
    }
}

impl std::fmt::Debug for CompiledFeatureSet {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CompiledFeatureSet")
            .field("features", &self.n_features)
            .field("prefiltered", &self.prefiltered)
            .field("always_run", &self.always_run.len())
            .field("engine", &self.engine)
            .field("fused", &self.fused_count)
            .field("fallback", &self.fallback.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sources::FeatureSource;

    fn feat(id: usize, pat: &str) -> Feature {
        Feature::new(id, pat, pat, FeatureSource::NidsSignatures).unwrap()
    }

    #[test]
    fn splits_features_into_prefiltered_and_always_run() {
        let features = vec![
            feat(0, "select"),          // literal
            feat(1, r"[0-9]+"),         // no literal requirement
            feat(2, r"union\s+select"), // literal
        ];
        let c = CompiledFeatureSet::build(&features);
        assert_eq!(c.always_run(), &[1]);
        assert_eq!(c.prefiltered_features(), 2);
        assert_eq!(c.feature_count(), 3);
    }

    #[test]
    fn candidates_are_always_run_plus_literal_hits() {
        let features = vec![
            feat(0, "select"),
            feat(1, r"[0-9]+"),
            feat(2, "sleep"),
            feat(3, "benchmark"),
        ];
        let c = CompiledFeatureSet::build(&features);
        let mut bits = CandidateSet::new(0);
        let hits = c.candidates_into(b"1 SELECT sleep(2)", &mut bits);
        assert_eq!(hits, 2);
        assert_eq!(bits.iter().collect::<Vec<_>>(), vec![0, 1, 2]);
        // A quiet payload leaves only the always-run feature.
        let hits = c.candidates_into(b"page=2", &mut bits);
        assert_eq!(hits, 0);
        assert_eq!(bits.iter().collect::<Vec<_>>(), vec![1]);
    }

    #[test]
    fn full_library_is_mostly_prefilterable() {
        let set = crate::FeatureSet::full();
        let c = CompiledFeatureSet::build(set.features());
        // The point of the prescan: the vast majority of the library
        // must be skippable on quiet traffic.
        assert!(
            c.prefiltered_features() * 10 >= set.len() * 9,
            "only {}/{} features prefilterable",
            c.prefiltered_features(),
            set.len()
        );
    }

    #[test]
    fn fused_engine_covers_most_of_the_library() {
        let set = crate::FeatureSet::full();
        let c = CompiledFeatureSet::build(set.features());
        assert_eq!(
            c.fused_features() + c.fallback_features().len(),
            set.len(),
            "every feature must be fused or on the fallback list"
        );
        // The point of fusion: the overwhelming majority of the
        // library must ride the single-pass automaton.
        assert!(
            c.fused_features() * 10 >= set.len() * 9,
            "only {}/{} features fused (fallbacks: {:?})",
            c.fused_features(),
            set.len(),
            c.fallback_features()
        );
    }

    #[test]
    fn fused_scan_is_exact_for_fused_and_sound_for_fallback() {
        let set = crate::FeatureSet::full();
        let c = CompiledFeatureSet::build(set.features());
        let mut on_fallback = vec![false; set.len()];
        for &(id, _) in c.fallback_features() {
            on_fallback[id as usize] = true;
        }
        let mut bits = CandidateSet::new(0);
        let mut dfa = psigene_regex::DfaCache::new();
        let payloads: &[&[u8]] = &[
            b"id=-1+union+select+1,2,concat(version(),0x3a),4--+-",
            b"page=2&sort=asc&term=2012",
            b"q=char(58),char(58)",
            b"",
        ];
        for p in payloads {
            let report = c
                .fused_candidates_into(p, &mut bits, &mut dfa)
                .expect("full library has a fused engine");
            let mut fused_matched = 0usize;
            for f in set.features() {
                let matches = f.count(p) > 0;
                if on_fallback[f.id] {
                    // Fallback features keep prescan semantics: a
                    // superset, never a miss.
                    assert!(
                        !matches || bits.contains(f.id),
                        "fallback feature {} missed on {p:?}",
                        f.name
                    );
                } else {
                    // Fused features get the exact answer.
                    assert_eq!(
                        bits.contains(f.id),
                        matches,
                        "fused feature {} wrong on {p:?}",
                        f.name
                    );
                    fused_matched += usize::from(matches);
                }
            }
            assert_eq!(report.fused_matched, fused_matched, "{p:?}");
        }
    }

    #[test]
    fn candidate_set_is_superset_of_matching_features() {
        let set = crate::FeatureSet::full();
        let c = CompiledFeatureSet::build(set.features());
        let mut bits = CandidateSet::new(0);
        let payloads: &[&[u8]] = &[
            b"id=-1+union+select+1,2,concat(version(),0x3a),4--+-",
            b"page=2&sort=asc&term=2012",
            b"q=char(58),char(58)",
            b"",
        ];
        for p in payloads {
            c.candidates_into(p, &mut bits);
            for f in set.features() {
                if f.count(p) > 0 {
                    assert!(
                        bits.contains(f.id),
                        "feature {} matched {:?} but was not a candidate",
                        f.name,
                        p
                    );
                }
            }
        }
    }
}
