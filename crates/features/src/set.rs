//! The feature set: construction from the three sources and the
//! 477 → 159-style pruning of §II-B.

use crate::feature::Feature;
use crate::fragments::SIGNATURE_FRAGMENTS;
use crate::prescan::CompiledFeatureSet;
use crate::refdocs::REFERENCE_PATTERNS;
use crate::reserved::{word_boundary_pattern, MYSQL_RESERVED};
use crate::sources::FeatureSource;
use psigene_linalg::CsrMatrix;
use std::sync::{Arc, OnceLock};

/// How extraction decides which feature VMs to run for a payload.
///
/// All three modes produce byte-identical feature vectors (pinned by
/// the equivalence proptests in `crate::proptests`); they differ only
/// in how much work the answer costs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum MatchMode {
    /// One VM run per feature (behind its private prefilter) — the
    /// pre-optimization behavior, kept as the equivalence oracle and
    /// benchmark baseline.
    Naive,
    /// Set-level literal prescan: one Aho–Corasick pass yields a
    /// *superset* of the matching features; only candidates run VMs.
    Prescan,
    /// Fused lazy-DFA scan: one pass yields the *exact* matching
    /// feature set for all fusable patterns (unfusable ones keep the
    /// prescan treatment); VMs run only to count known matches.
    #[default]
    Fused,
}

/// An ordered collection of features; column `j` of every extracted
/// matrix corresponds to `features()[j]`.
#[derive(Debug, Clone)]
pub struct FeatureSet {
    features: Vec<Feature>,
    /// Lazily-built set-level matching engines (literal prescan +
    /// fused automaton), shared by clones (a clone has the same
    /// features, so the automata are reusable).
    compiled: OnceLock<Arc<CompiledFeatureSet>>,
    /// Which extraction strategy this handle uses.
    mode: MatchMode,
    /// Whether the fused lazy DFA uses quiescent-state acceleration
    /// (on by default; off exists for A/B benchmarks and equivalence
    /// tests).
    accelerate: bool,
}

impl FeatureSet {
    /// Builds the full raw library from all three Table II sources.
    /// At construction this is the analog of the paper's initial 477
    /// features; pruning against training data shrinks it (the paper
    /// ends at 159).
    pub fn full() -> FeatureSet {
        let mut features = Vec::new();
        let mut id = 0;
        for word in MYSQL_RESERVED {
            features.push(
                Feature::new(
                    id,
                    format!("kw:{word}"),
                    word_boundary_pattern(word),
                    FeatureSource::ReservedWords,
                )
                .expect("reserved-word pattern compiles"),
            );
            id += 1;
        }
        for frag in SIGNATURE_FRAGMENTS {
            features.push(
                Feature::new(
                    id,
                    format!("sig:{frag}"),
                    *frag,
                    FeatureSource::NidsSignatures,
                )
                .expect("signature fragment compiles"),
            );
            id += 1;
        }
        for pat in REFERENCE_PATTERNS {
            features.push(
                Feature::new(
                    id,
                    format!("ref:{pat}"),
                    *pat,
                    FeatureSource::ReferenceDocuments,
                )
                .expect("reference pattern compiles"),
            );
            id += 1;
        }
        FeatureSet::from_feature_vec(features)
    }

    /// Builds a set from explicit features (renumbering ids).
    pub fn from_features(features: Vec<Feature>) -> FeatureSet {
        let features = features
            .into_iter()
            .enumerate()
            .map(|(i, mut f)| {
                f.id = i;
                f
            })
            .collect();
        FeatureSet::from_feature_vec(features)
    }

    fn from_feature_vec(features: Vec<Feature>) -> FeatureSet {
        FeatureSet {
            features,
            compiled: OnceLock::new(),
            mode: MatchMode::default(),
            accelerate: true,
        }
    }

    /// The set-level matching engines for this feature set, built on
    /// first use and shared by clones.
    pub fn compiled(&self) -> &CompiledFeatureSet {
        self.compiled.get_or_init(|| {
            Arc::new(CompiledFeatureSet::build_with(
                &self.features,
                self.accelerate,
            ))
        })
    }

    /// A copy of this set with lazy-DFA acceleration toggled. Unlike
    /// [`FeatureSet::with_match_mode`], the compiled engines are NOT
    /// shared — the automaton itself differs — so the copy pays one
    /// rebuild on first use.
    pub fn with_acceleration(&self, enabled: bool) -> FeatureSet {
        FeatureSet {
            features: self.features.clone(),
            compiled: OnceLock::new(),
            mode: self.mode,
            accelerate: enabled,
        }
    }

    /// Whether the fused engine skips quiescent states.
    pub fn acceleration_enabled(&self) -> bool {
        self.accelerate
    }

    /// The extraction strategy this handle uses.
    pub fn match_mode(&self) -> MatchMode {
        self.mode
    }

    /// A copy of this set using `mode`; the compiled engines are
    /// shared, so switching modes is free.
    pub fn with_match_mode(&self, mode: MatchMode) -> FeatureSet {
        let mut set = self.clone();
        set.mode = mode;
        set
    }

    /// Whether extraction uses a set-level scan (prescan or fused) or
    /// the forced always-run path.
    pub fn prescan_enabled(&self) -> bool {
        self.mode != MatchMode::Naive
    }

    /// A copy of this set with the set-level scan toggled. With
    /// `false`, every extraction runs every feature's own VM (with
    /// its private prefilter) — the pre-prescan behavior, kept as the
    /// equivalence oracle and benchmark baseline. With `true`, the
    /// default (fused) strategy.
    pub fn with_prescan(&self, enabled: bool) -> FeatureSet {
        self.with_match_mode(if enabled {
            MatchMode::Fused
        } else {
            MatchMode::Naive
        })
    }

    /// The features, in column order.
    pub fn features(&self) -> &[Feature] {
        &self.features
    }

    /// Number of features.
    pub fn len(&self) -> usize {
        self.features.len()
    }

    /// True when the set is empty.
    pub fn is_empty(&self) -> bool {
        self.features.is_empty()
    }

    /// Per-source counts (for the Table II summary).
    pub fn source_histogram(&self) -> Vec<(FeatureSource, usize)> {
        FeatureSource::ALL
            .iter()
            .map(|&s| (s, self.features.iter().filter(|f| f.source == s).count()))
            .collect()
    }

    /// The pruning step of §II-B: keep only features observed in the
    /// training matrix ("removing those features that were not found
    /// in any of the samples used in the training phase").
    ///
    /// Returns the pruned set plus, for each kept feature, its column
    /// index in the original matrix.
    pub fn prune_unobserved(&self, training: &CsrMatrix) -> (FeatureSet, Vec<usize>) {
        assert_eq!(
            training.cols(),
            self.len(),
            "matrix width does not match feature count"
        );
        let mut seen = vec![false; self.len()];
        for r in 0..training.rows() {
            for (c, v) in training.row(r) {
                if v != 0.0 {
                    seen[c] = true;
                }
            }
        }
        let kept: Vec<usize> = (0..self.len()).filter(|&c| seen[c]).collect();
        let features = kept
            .iter()
            .map(|&c| self.features[c].clone())
            .collect::<Vec<_>>();
        (FeatureSet::from_features(features), kept)
    }

    /// How many features behave as binary (only values 0/1) on the
    /// given matrix — the paper reports 70 of its 159.
    pub fn binary_feature_count(&self, m: &CsrMatrix) -> usize {
        let mut max = vec![0.0f64; self.len()];
        let mut any = vec![false; self.len()];
        for r in 0..m.rows() {
            for (c, v) in m.row(r) {
                max[c] = max[c].max(v);
                any[c] = any[c] || v != 0.0;
            }
        }
        (0..self.len()).filter(|&c| any[c] && max[c] <= 1.0).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use psigene_linalg::CsrBuilder;

    #[test]
    fn full_library_size_is_paper_scale() {
        let set = FeatureSet::full();
        // The paper starts from 477 features; our three sources land
        // in the same band.
        assert!(
            (380..=520).contains(&set.len()),
            "library size {} outside paper band",
            set.len()
        );
    }

    #[test]
    fn histogram_covers_all_sources() {
        let set = FeatureSet::full();
        for (source, n) in set.source_histogram() {
            assert!(n > 0, "{source:?} contributed nothing");
        }
    }

    #[test]
    fn ids_are_column_indices() {
        let set = FeatureSet::full();
        for (i, f) in set.features().iter().enumerate() {
            assert_eq!(f.id, i);
        }
    }

    #[test]
    fn pruning_drops_unobserved_columns() {
        let set = FeatureSet::full();
        let n = set.len();
        // A matrix where only columns 3 and 7 are ever non-zero.
        let mut b = CsrBuilder::new(n);
        b.push_row(&[(3, 2.0)]);
        b.push_row(&[(7, 1.0)]);
        b.push_row(&[]);
        let m = b.build();
        let (pruned, kept) = set.prune_unobserved(&m);
        assert_eq!(pruned.len(), 2);
        assert_eq!(kept, vec![3, 7]);
        assert_eq!(pruned.features()[0].pattern, set.features()[3].pattern);
        assert_eq!(pruned.features()[0].id, 0);
    }

    #[test]
    fn binary_feature_detection() {
        let set = FeatureSet::from_features(vec![
            Feature::new(0, "a", "a", FeatureSource::ReservedWords).unwrap(),
            Feature::new(1, "b", "b", FeatureSource::ReservedWords).unwrap(),
            Feature::new(2, "c", "c", FeatureSource::ReservedWords).unwrap(),
        ]);
        let mut bld = CsrBuilder::new(3);
        bld.push_row(&[(0, 1.0), (1, 3.0)]);
        bld.push_row(&[(0, 1.0)]);
        let m = bld.build();
        // Feature 0: values {1,1} → binary. Feature 1: {3} → not.
        // Feature 2: never seen → not counted.
        assert_eq!(set.binary_feature_count(&m), 1);
    }
}
