//! The pSigene feature library (§II-B of the paper).
//!
//! Features are counting regexes over normalized payloads, drawn
//! from the three sources of Table II:
//!
//! 1. [`reserved`] — MySQL reserved words;
//! 2. [`fragments`] — IDS/WAF signatures deconstructed into logical
//!    components (including the paper's own quoted fragments);
//! 3. [`refdocs`] — cheat-sheet idioms from SQLi reference documents.
//!
//! [`FeatureSet::full`] is the analog of the paper's initial 477
//! features; [`FeatureSet::prune_unobserved`] reproduces the pruning
//! that took the paper to 159.
//!
//! # Example
//!
//! ```
//! use psigene_features::{extract, FeatureSet};
//!
//! let set = FeatureSet::full();
//! let row = extract::extract_row(&set, b"id=1+UNION+SELECT+password,2,3--");
//! assert!(!row.is_empty());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod extract;
pub mod feature;
pub mod fragments;
pub mod refdocs;
pub mod reserved;
pub mod set;
pub mod sources;

pub use feature::Feature;
pub use set::FeatureSet;
pub use sources::FeatureSource;

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn extraction_never_panics_on_arbitrary_bytes(
            payload in proptest::collection::vec(any::<u8>(), 0..200),
        ) {
            let set = FeatureSet::full();
            let row = extract::extract_row(&set, &payload);
            // Columns are valid and counts positive.
            prop_assert!(row.iter().all(|&(c, v)| c < set.len() && v >= 1.0));
        }

        #[test]
        fn dense_and_sparse_extraction_agree(
            payload in "[ -~]{0,120}",
        ) {
            let set = FeatureSet::full();
            let dense = extract::extract_dense(&set, payload.as_bytes());
            let sparse = extract::extract_row(&set, payload.as_bytes());
            for (c, v) in sparse {
                prop_assert_eq!(dense[c], v);
            }
        }
    }
}
