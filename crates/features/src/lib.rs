//! The pSigene feature library (§II-B of the paper).
//!
//! Features are counting regexes over normalized payloads, drawn
//! from the three sources of Table II:
//!
//! 1. [`reserved`] — MySQL reserved words;
//! 2. [`fragments`] — IDS/WAF signatures deconstructed into logical
//!    components (including the paper's own quoted fragments);
//! 3. [`refdocs`] — cheat-sheet idioms from SQLi reference documents.
//!
//! [`FeatureSet::full`] is the analog of the paper's initial 477
//! features; [`FeatureSet::prune_unobserved`] reproduces the pruning
//! that took the paper to 159.
//!
//! # Example
//!
//! ```
//! use psigene_features::{extract, FeatureSet};
//!
//! let set = FeatureSet::full();
//! let row = extract::extract_row(&set, b"id=1+UNION+SELECT+password,2,3--");
//! assert!(!row.is_empty());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod extract;
pub mod feature;
pub mod fragments;
pub mod prescan;
pub mod refdocs;
pub mod reserved;
pub mod set;
pub mod sources;

pub use feature::Feature;
pub use prescan::{CompiledFeatureSet, FusedScanReport};
pub use set::{FeatureSet, MatchMode};
pub use sources::FeatureSource;

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;
    use std::sync::OnceLock;

    /// The full library, built once (compiling ~450 regexes per
    /// proptest case would dominate the run).
    fn full_set() -> &'static FeatureSet {
        static SET: OnceLock<FeatureSet> = OnceLock::new();
        SET.get_or_init(FeatureSet::full)
    }

    /// The same library with quiescent-state acceleration disabled —
    /// a separate compiled automaton, so alternating extractions
    /// between the two sets also exercises the thread-local DFA
    /// cache's rebind (hot-reload) path on every case.
    fn unaccelerated_set() -> &'static FeatureSet {
        static SET: OnceLock<FeatureSet> = OnceLock::new();
        SET.get_or_init(|| FeatureSet::full().with_acceleration(false))
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn extraction_never_panics_on_arbitrary_bytes(
            payload in proptest::collection::vec(any::<u8>(), 0..200),
        ) {
            let set = full_set();
            let row = extract::extract_row(set, &payload);
            // Columns are valid and counts positive.
            prop_assert!(row.iter().all(|&(c, v)| c < set.len() && v >= 1.0));
        }

        /// Set-level scan soundness (the tentpole invariant): on
        /// arbitrary byte payloads, every extraction mode — fused
        /// lazy-DFA (default), literal prescan, and the forced
        /// always-run oracle — produces rows *identical* to naive
        /// per-feature extraction: same columns in the same order
        /// with the same counts, not merely the same nonzero support.
        #[test]
        fn fused_and_prescan_extraction_equal_naive_extraction(
            payload in proptest::collection::vec(any::<u8>(), 0..300),
        ) {
            let set = full_set();
            // Default mode is Fused.
            let row = extract::extract_row(set, &payload);
            // Naive oracle: every feature's VM runs, no set-level
            // engine involved.
            let norm = psigene_http::normalize::normalize(&payload);
            let naive: Vec<(usize, f64)> = set
                .features()
                .iter()
                .filter_map(|f| {
                    let c = f.count(&norm);
                    (c > 0).then_some((f.id, c as f64))
                })
                .collect();
            prop_assert_eq!(&row, &naive);
            // Dense path: identical full vectors (zeros included).
            let dense = extract::extract_dense(set, &payload);
            let naive_dense: Vec<f64> = set
                .features()
                .iter()
                .map(|f| f.count(&norm) as f64)
                .collect();
            prop_assert_eq!(&dense, &naive_dense);
            // Every explicit mode agrees bit-for-bit with the fused
            // default.
            for mode in [MatchMode::Prescan, MatchMode::Naive] {
                let alt = set.with_match_mode(mode);
                prop_assert_eq!(&row, &extract::extract_row(&alt, &payload));
                prop_assert_eq!(&dense, &extract::extract_dense(&alt, &payload));
            }
        }

        /// Acceleration invariant at the library level: skipping
        /// quiescent DFA runs must be invisible in results. Sparse
        /// rows are equal and dense vectors are *bitwise* identical
        /// (`f64::to_bits`, not `==` — the downstream detector dots
        /// these against trained weights, so even a sign-of-zero
        /// difference would be a real divergence).
        #[test]
        fn accelerated_extraction_is_bit_identical(
            payload in proptest::collection::vec(any::<u8>(), 0..300),
        ) {
            let on = full_set();
            let off = unaccelerated_set();
            prop_assert!(on.acceleration_enabled());
            prop_assert!(!off.acceleration_enabled());
            prop_assert_eq!(
                extract::extract_row(on, &payload),
                extract::extract_row(off, &payload)
            );
            let dense_on: Vec<u64> = extract::extract_dense(on, &payload)
                .iter().map(|v| v.to_bits()).collect();
            let dense_off: Vec<u64> = extract::extract_dense(off, &payload)
                .iter().map(|v| v.to_bits()).collect();
            prop_assert_eq!(dense_on, dense_off);
        }

        #[test]
        fn dense_and_sparse_extraction_agree(
            payload in "[ -~]{0,120}",
        ) {
            let set = full_set();
            let dense = extract::extract_dense(set, payload.as_bytes());
            let sparse = extract::extract_row(set, payload.as_bytes());
            for (c, v) in sparse {
                prop_assert_eq!(dense[c], v);
            }
        }
    }
}
