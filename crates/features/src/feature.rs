//! A single counting feature.

use crate::sources::FeatureSource;
use psigene_regex::{Regex, RegexBuilder, VmCache};

/// One feature: a compiled pattern whose non-overlapping match count
/// over the normalized payload is the feature value (§II-B: "each one
/// measuring the number of times a feature was found in an attack
/// sample").
#[derive(Debug, Clone)]
pub struct Feature {
    /// Stable index within the owning [`crate::FeatureSet`].
    pub id: usize,
    /// Human-readable name (the pattern text for generated features).
    pub name: String,
    /// The pattern source text.
    pub pattern: String,
    /// Which of Table II's three sources produced it.
    pub source: FeatureSource,
    regex: Regex,
}

impl Feature {
    /// Compiles a feature (case-insensitive, as IDS rules are).
    pub fn new(
        id: usize,
        name: impl Into<String>,
        pattern: impl Into<String>,
        source: FeatureSource,
    ) -> Result<Feature, psigene_regex::Error> {
        let pattern = pattern.into();
        let regex = RegexBuilder::new().case_insensitive(true).build(&pattern)?;
        Ok(Feature {
            id,
            name: name.into(),
            pattern,
            source,
            regex,
        })
    }

    /// The feature value for a normalized payload: the number of
    /// non-overlapping matches.
    pub fn count(&self, normalized_payload: &[u8]) -> usize {
        self.regex.count_all(normalized_payload)
    }

    /// Like [`Feature::count`] but reusing caller-provided VM scratch
    /// space — identical result, no per-call allocation. The
    /// extraction hot path shares one cache across every feature it
    /// counts on a payload.
    pub fn count_with(&self, normalized_payload: &[u8], cache: &mut VmCache) -> usize {
        self.regex.count_all_with(normalized_payload, cache)
    }

    /// [`Feature::count_with`] for payloads the fused scan already
    /// proved this feature matches: skips the feature's own prefilter
    /// gate (a redundant haystack traversal — the prefilter never
    /// rejects a matching payload, so the count is identical).
    pub fn count_known_match(&self, normalized_payload: &[u8], cache: &mut VmCache) -> usize {
        self.regex
            .count_all_prefiltered_with(normalized_payload, cache)
    }

    /// Borrow of the compiled pattern.
    pub fn regex(&self) -> &Regex {
        &self.regex
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counting_semantics() {
        let f = Feature::new(0, "char(", r"char\s*\(", FeatureSource::NidsSignatures).unwrap();
        assert_eq!(f.count(b"char(58),x,char (97)"), 2);
        assert_eq!(f.count(b"nothing"), 0);
    }

    #[test]
    fn case_insensitive_by_default() {
        let f = Feature::new(0, "union", "union", FeatureSource::ReservedWords).unwrap();
        assert_eq!(f.count(b"UNION union UnIoN"), 3);
    }

    #[test]
    fn invalid_pattern_is_an_error() {
        assert!(Feature::new(0, "bad", "(", FeatureSource::ReferenceDocuments).is_err());
    }
}
