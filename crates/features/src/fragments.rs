//! Signature fragments (feature source 2 of Table II).
//!
//! "We did not use a whole signature as a single feature, but rather
//! divided the signature into logical components ... using
//! metacharacters such as parentheses and the alternation operator
//! that delimit logical groups and branches inside a regular
//! expression."
//!
//! This module carries both the fragment corpus (patterns in the
//! style of Snort/Bro/ModSecurity CRS SQLi rules, including the
//! paper's quoted examples) and the deconstruction algorithm that
//! splits a composite signature into its top-level groups.

/// Splits a composite signature on top-level alternation between
/// non-capturing groups — the paper's worked example turns
/// `(?:g1)|(?:g2)|...|(?:g7)` into seven features.
pub fn deconstruct(signature: &str) -> Vec<String> {
    let bytes = signature.as_bytes();
    let mut parts = Vec::new();
    let mut depth = 0usize;
    let mut in_class = false;
    let mut start = 0usize;
    let mut i = 0;
    while i < bytes.len() {
        match bytes[i] {
            b'\\' => i += 1, // skip escaped char
            b'[' if !in_class => in_class = true,
            b']' if in_class => in_class = false,
            b'(' if !in_class => depth += 1,
            b')' if !in_class => depth = depth.saturating_sub(1),
            b'|' if !in_class && depth == 0 => {
                parts.push(signature[start..i].to_string());
                start = i + 1;
            }
            _ => {}
        }
        i += 1;
    }
    parts.push(signature[start..].to_string());
    parts
        .into_iter()
        .map(|p| strip_group(&p))
        .filter(|p| !p.is_empty())
        .collect()
}

/// Removes one enclosing `(?:...)` / `(?i:...)` / `(...)` wrapper.
fn strip_group(part: &str) -> String {
    let p = part.trim();
    for prefix in ["(?:", "(?i:", "(?is:", "("] {
        if let Some(inner) = p.strip_prefix(prefix) {
            if let Some(body) = inner.strip_suffix(')') {
                // Only strip when the wrapper encloses the whole part
                // (no top-level close before the end).
                let mut depth = 1i32;
                let bytes = body.as_bytes();
                let mut ok = true;
                let mut i = 0;
                while i < bytes.len() {
                    match bytes[i] {
                        b'\\' => i += 1,
                        b'(' => depth += 1,
                        b')' => {
                            depth -= 1;
                            if depth == 0 {
                                ok = false;
                                break;
                            }
                        }
                        _ => {}
                    }
                    i += 1;
                }
                if ok {
                    return body.to_string();
                }
            }
        }
    }
    p.to_string()
}

/// The fragment corpus: logical components of SQLi signatures in the
/// styles of the three rulesets the paper deconstructs. Patterns are
/// matched case-insensitively against the *normalized* payload.
pub const SIGNATURE_FRAGMENTS: &[&str] = &[
    // —— From the paper's own examples (§II-B, Table III) ——
    r"in\s*?\(+\s*?select",
    r"\)?;",
    r"[^a-z&]+=",
    r"=[-0-9%]*",
    r"<=>|r?like|sounds\s+like|regexp",
    r"([^a-z&]+)?&|exists",
    r"[?&][^\s\x00-\x37|]+?=",
    r"ch(a)?r\s*?\(\s*?\d",
    r"is\s+null",
    r"like\s+null",
    // —— union/select composites (Snort & ET style) ——
    r"union\s+select",
    r"union\s+all\s+select",
    r"union(\s|\+|/\*.*?\*/)+(all(\s|\+|/\*.*?\*/)+)?select",
    r"select\s+[0-9,]+",
    r"select\s+null(,null)*",
    r"select.+from",
    r"insert\s+into",
    r"delete\s+from",
    r"update\s+[a-z_]+\s+set",
    r"drop\s+table",
    r"alter\s+table",
    r"truncate\s+table",
    // —— comparison / tautology shapes ——
    r"or\s+\d+\s*=\s*\d+",
    r"and\s+\d+\s*=\s*\d+",
    r"or\s+'[^']*'\s*=\s*'",
    r"and\s+'[^']*'\s*=\s*'",
    r"or\s+\x22[^\x22]*\x22\s*=\s*\x22",
    r"'\s*or\s*'",
    r"\d+\s*=\s*\d+",
    r"'[^']*'\s*=\s*'[^']*'",
    r"or\s+\d+\s*>\s*\d+",
    r"\|\|",
    r"&&",
    // —— quote and comment mechanics ——
    r"'",
    r"\x22",
    r"--",
    r"--\s",
    r"#",
    r"/\*",
    r"\*/",
    r"/\*.*?\*/",
    r"/\*![0-9]*",
    r";\s*$",
    r";",
    r"`",
    // —— functions beloved by injections ——
    r"concat\s*\(",
    r"concat_ws\s*\(",
    r"group_concat\s*\(",
    r"char\s*\(",
    r"ascii\s*\(",
    r"substring\s*\(",
    r"substr\s*\(",
    r"mid\s*\(",
    r"length\s*\(",
    r"version\s*\(",
    r"database\s*\(",
    r"user\s*\(",
    r"current_user",
    r"system_user\s*\(",
    r"session_user\s*\(",
    r"sleep\s*\(",
    r"benchmark\s*\(",
    r"md5\s*\(",
    r"sha1\s*\(",
    r"load_file\s*\(",
    r"extractvalue\s*\(",
    r"updatexml\s*\(",
    r"floor\s*\(rand\s*\(",
    r"rand\s*\(",
    r"count\s*\(\s*\*\s*\)",
    r"if\s*\(",
    r"ifnull\s*\(",
    r"coalesce\s*\(",
    r"cast\s*\(",
    r"convert\s*\(",
    r"hex\s*\(",
    r"unhex\s*\(",
    r"exp\s*\(",
    r"analyse\s*\(",
    // —— schema snooping ——
    r"information_schema",
    r"information_schema\.tables",
    r"information_schema\.columns",
    r"table_schema",
    r"table_name",
    r"column_name",
    r"mysql\.user",
    r"@@version",
    r"@@datadir",
    r"@@hostname",
    r"@@[a-z_]+",
    // —— literals / encodings ——
    r"0x[0-9a-f]{2,}",
    r"%2527",
    r"%27",
    r"%22",
    r"%3d",
    r"%3b",
    r"\+union\+",
    r"\+select",
    r"\+or\+",
    r"\+and\+",
    // —— clause shapes ——
    r"order\s+by\s+\d+",
    r"group\s+by\s+\d+",
    r"group\s+by\s+[a-z]",
    r"limit\s+\d+",
    r"limit\s+\d+\s*,\s*\d+",
    r"offset\s+\d+",
    r"having\s+\d+",
    r"where\s+[a-z_]+\s*=",
    r"from\s+[a-z_]+\s+where",
    r"into\s+(out|dump)file",
    r"procedure\s+analyse",
    r"waitfor\s+delay",
    r"not\s+in\s*\(",
    r"in\s*\(\s*\d+(\s*,\s*\d+)*\s*\)",
    r"between\s+\d+\s+and",
    r"case\s+when",
    r"when\s+\d+\s*=\s*\d+",
    r"then\s+\d",
    r"else\s+\d",
    r"end\s*\)?",
    r"exists\s*\(\s*select",
    r"select\s+\*",
    r"admin'?\s*(--|#)",
    r"'\s*(--|#)",
    r"\)\s*(--|#)",
    r"\d+\s*;\s*(drop|insert|update|delete|shutdown)",
    r";\s*shutdown",
    // —— parameter shapes from ET/Snort ——
    r"\?[a-z_]+=-?\d+'",
    r"=\s*-\d+",
    r"=['\x22]",
    r"='?\s*or",
    r"%[0-9a-f]{2}",
    r"(%[0-9a-f]{2}){4,}",
    r"\(\s*select",
    r"select\s*\(",
    r"\)\s*or\s*\(",
    r"\)\s*and\s*\(",
    r"'\s*\)",
    r"\(\s*'",
    r",\s*null\b",
    r"null\s*,",
    r",\d+,",
    r"\d,\d,\d",
];

#[cfg(test)]
mod tests {
    use super::*;
    use psigene_regex::{Regex, RegexBuilder};

    #[test]
    fn all_fragments_compile_case_insensitively() {
        for frag in SIGNATURE_FRAGMENTS {
            RegexBuilder::new()
                .case_insensitive(true)
                .build(frag)
                .unwrap_or_else(|e| panic!("fragment {frag:?} failed: {e}"));
        }
    }

    #[test]
    fn fragment_corpus_is_unique_and_sizable() {
        let mut set = std::collections::HashSet::new();
        for f in SIGNATURE_FRAGMENTS {
            assert!(set.insert(f), "duplicate fragment {f:?}");
        }
        assert!(
            SIGNATURE_FRAGMENTS.len() >= 120,
            "{}",
            SIGNATURE_FRAGMENTS.len()
        );
    }

    #[test]
    fn deconstruct_the_papers_example() {
        // The ModSec CRS example of §II-B: seven case-insensitive
        // groups joined by alternation.
        let sig = r"(?:g1)|(?:g2)|(?:is\s+null)|(?:like\s+null)|(?:g5)|(?:g6)|(?:g7)";
        let parts = deconstruct(sig);
        assert_eq!(parts.len(), 7);
        assert_eq!(parts[2], r"is\s+null");
        assert_eq!(parts[3], r"like\s+null");
    }

    #[test]
    fn deconstruct_respects_nesting_and_classes() {
        let sig = r"(?:a|(b|c))|[|]d";
        let parts = deconstruct(sig);
        // The top-level alternation splits once; `|` inside the class
        // and inside the nested group must not split.
        assert_eq!(parts.len(), 2);
        assert_eq!(parts[0], "a|(b|c)");
        assert_eq!(parts[1], "[|]d");
    }

    #[test]
    fn deconstruct_handles_escapes() {
        let parts = deconstruct(r"a\|b|c");
        assert_eq!(parts, vec![r"a\|b", "c"]);
    }

    #[test]
    fn fragments_hit_their_targets() {
        let check = |pat: &str, hay: &[u8]| {
            let re = RegexBuilder::new()
                .case_insensitive(true)
                .build(pat)
                .unwrap();
            assert!(re.is_match(hay), "{pat:?} should match {hay:?}");
        };
        check(r"union\s+select", b"1 union select 2");
        check(r"ch(a)?r\s*?\(\s*?\d", b"char(58)");
        check(r"floor\s*\(rand\s*\(", b"floor(rand(0)*2)");
        check(r"0x[0-9a-f]{2,}", b"concat(0x7e)");
        check(r"into\s+(out|dump)file", b"into outfile '/tmp/x'");
        check(
            r"\d+\s*;\s*(drop|insert|update|delete|shutdown)",
            b"1; drop table users",
        );
    }

    #[test]
    fn word_boundary_fragment_counts() {
        let re = Regex::new(r"(%[0-9a-f]{2}){4,}").unwrap();
        assert!(re.is_match(b"%55%4e%49%4f%4e"));
        assert!(!re.is_match(b"%55%4e"));
    }
}
