//! Reference-document patterns (feature source 3 of Table II).
//!
//! "Common strings found in SQLi attacks, shared by subject matter
//! experts" — the paper cites the WebSec SQL injection pocket
//! reference and Clarke's *SQL Injection Attacks and Defense*. These
//! are the idioms written down in cheat sheets rather than derived
//! from deployed rules.

/// Cheat-sheet patterns, matched case-insensitively on normalized
/// payloads. Includes the paper's quoted examples
/// (`' ORDER BY [0-9]-- -`, `/\*/`, `\"`).
pub const REFERENCE_PATTERNS: &[&str] = &[
    // Paper's own examples from Table II.
    r"'\s*order\s+by\s+[0-9]+\s*--\s-",
    r"/\*/",
    r"\x22",
    // Pocket-reference probing idioms.
    r"'\s*--",
    r"'\s*#",
    r"'\s*/\*",
    r"\x22\s*--",
    r"admin'\s*--",
    r"admin\x22\s*--",
    r"'\s*or\s*1\s*=\s*1",
    r"\x22\s*or\s*1\s*=\s*1",
    r"or\s+1\s*=\s*1\s*(--|#|/\*)",
    r"'\s*or\s*''\s*=\s*'",
    r"'\s*or\s*'1'\s*=\s*'1",
    r"\x22\s*or\s*\x22a\x22\s*=\s*\x22a",
    r"\)\s*or\s*\(\s*'?1'?\s*=\s*'?1",
    r"'\)\s*or\s*\('",
    // Column-count bisection.
    r"order\s+by\s+1\s*--",
    r"order\s+by\s+[0-9]{1,2}\s*(--|#)?",
    r"union\s+select\s+null",
    r"union\s+select\s+1\s*,",
    // Version/fingerprint probes.
    r"and\s+substring\s*\(\s*@*version",
    r"version\s*\(\s*\)\s*,",
    r"concat\s*\(\s*0x",
    r"concat\s*\(\s*char\s*\(",
    r"concat\s*\(.+char\s*\(\s*58",
    r"unhex\s*\(\s*hex\s*\(",
    // Blind probing.
    r"and\s+sleep\s*\(\s*\d+\s*\)",
    r"or\s+sleep\s*\(\s*\d+\s*\)",
    r"and\s+benchmark\s*\(",
    r"if\s*\(\s*\d+\s*=\s*\d+\s*,\s*sleep",
    r"and\s+ascii\s*\(\s*substring",
    r"and\s+\(\s*select\s+count",
    r"and\s+length\s*\(",
    r"and\s+exists\s*\(\s*select",
    // Stacked / destructive.
    r";\s*drop\s+table",
    r";\s*insert\s+into",
    r";\s*update\s+",
    r";\s*delete\s+from",
    r";\s*exec",
    // Outfile / file access.
    r"into\s+outfile",
    r"into\s+dumpfile",
    r"load_file\s*\(\s*'",
    r"load_file\s*\(\s*0x",
    r"load\s+data\s+infile",
    // Hex/char smuggling.
    r"char\s*\(\s*\d+\s*(,\s*\d+\s*)+\)",
    r"0x3a",
    r"0x7e",
    r"0x27",
    r"=\s*0x[0-9a-f]+",
    // Double-encoding / evasion markers.
    r"%25[0-9a-f]{2}",
    r"%u00[0-9a-f]{2}",
    r"un/\*.*?\*/ion",
    r"se/\*.*?\*/lect",
    r"/\*!\s*select",
    r"\+union\+all\+select\+",
    // Error-based extraction idioms.
    r"extractvalue\s*\(\s*1\s*,",
    r"updatexml\s*\(\s*1\s*,",
    r"group\s+by\s+x\s*\)\s*a",
    r"floor\s*\(\s*rand\s*\(\s*0\s*\)\s*\*\s*2\s*\)",
    r"procedure\s+analyse\s*\(",
    // Auth-bypass one-liners.
    r"'\s*or\s*'x'\s*=\s*'x",
    r"'\s*\|\|\s*'",
    r"1'\s*and\s*'1'\s*=\s*'1",
    r"like\s*'%",
    r"'\s*between\s*'",
    // Boundary probes on numeric params.
    r"=\s*-?\d+\s+or\s+\d",
    r"=\s*-?\d+\s+and\s+\d",
    r"=\s*-\d+\s+union",
    r"and\s+\d+\s*>\s*\d+",
    r"\d+\s*=\s*\d+\s*--",
];

#[cfg(test)]
mod tests {
    use super::*;
    use psigene_regex::RegexBuilder;

    #[test]
    fn all_patterns_compile() {
        for pat in REFERENCE_PATTERNS {
            RegexBuilder::new()
                .case_insensitive(true)
                .build(pat)
                .unwrap_or_else(|e| panic!("pattern {pat:?} failed: {e}"));
        }
    }

    #[test]
    fn corpus_is_unique_and_sizable() {
        let mut set = std::collections::HashSet::new();
        for p in REFERENCE_PATTERNS {
            assert!(set.insert(p), "duplicate {p:?}");
        }
        assert!(
            REFERENCE_PATTERNS.len() >= 60,
            "{}",
            REFERENCE_PATTERNS.len()
        );
    }

    #[test]
    fn papers_order_by_example_matches() {
        let re = RegexBuilder::new()
            .case_insensitive(true)
            .build(r"'\s*order\s+by\s+[0-9]+\s*--\s-")
            .unwrap();
        assert!(re.is_match(b"' ORDER BY 10-- -"));
        assert!(!re.is_match(b"order by name"));
    }

    #[test]
    fn cheat_sheet_idioms_match_their_payloads() {
        let check = |pat: &str, hay: &[u8]| {
            let re = RegexBuilder::new()
                .case_insensitive(true)
                .build(pat)
                .unwrap();
            assert!(re.is_match(hay), "{pat:?} should match {hay:?}");
        };
        check(r"'\s*or\s*'1'\s*=\s*'1", b"x' or '1'='1");
        check(r"and\s+sleep\s*\(\s*\d+\s*\)", b"1 and sleep(5)");
        check(r"char\s*\(\s*\d+\s*(,\s*\d+\s*)+\)", b"char(97,100,109)");
        check(r"un/\*.*?\*/ion", b"un/**/ion select");
        check(r";\s*drop\s+table", b"1; drop table users--");
    }
}
