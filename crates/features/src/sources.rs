//! Feature provenance (Table II of the paper).

use serde::{Deserialize, Serialize};

/// The three feature sources of Table II.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum FeatureSource {
    /// MySQL reserved words.
    ReservedWords,
    /// Deconstructed NIDS/WAF signatures (Snort, Bro, ModSecurity).
    NidsSignatures,
    /// SQLi reference documents / cheat sheets.
    ReferenceDocuments,
}

impl FeatureSource {
    /// All sources in Table II order.
    pub const ALL: [FeatureSource; 3] = [
        FeatureSource::ReservedWords,
        FeatureSource::NidsSignatures,
        FeatureSource::ReferenceDocuments,
    ];

    /// Table II's "feature source" column.
    pub fn label(&self) -> &'static str {
        match self {
            FeatureSource::ReservedWords => "MySQL Reserved Words",
            FeatureSource::NidsSignatures => "NIDS/WAF Signatures",
            FeatureSource::ReferenceDocuments => "SQLi Reference Documents",
        }
    }

    /// Table II's "description" column.
    pub fn description(&self) -> &'static str {
        match self {
            FeatureSource::ReservedWords => {
                "Words are reserved in MySQL and require special treatment \
                 for use as identifiers or functions."
            }
            FeatureSource::NidsSignatures => {
                "SQLi signatures from popular open-source detection systems \
                 are deconstructed into their components."
            }
            FeatureSource::ReferenceDocuments => {
                "Common strings found in SQLi attacks, shared by subject \
                 matter experts."
            }
        }
    }

    /// Table II's "examples" column.
    pub fn examples(&self) -> &'static [&'static str] {
        match self {
            FeatureSource::ReservedWords => &["create", "insert", "delete"],
            FeatureSource::NidsSignatures => &[r"in\s*?\(+\s*?select", r"\)?;", r"[^a-zA-Z&]+="],
            FeatureSource::ReferenceDocuments => &["' ORDER BY [0-9]-- -", r"/\*/", "\\\""],
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table2_rows_are_complete() {
        for s in FeatureSource::ALL {
            assert!(!s.label().is_empty());
            assert!(!s.description().is_empty());
            assert!(!s.examples().is_empty());
        }
    }

    #[test]
    fn labels_are_distinct() {
        let labels: std::collections::HashSet<_> =
            FeatureSource::ALL.iter().map(|s| s.label()).collect();
        assert_eq!(labels.len(), 3);
    }
}
