//! MySQL reserved words (feature source 1 of Table II).
//!
//! The paper derives features from the MySQL 5.5 reserved-word list
//! (Oracle reference manual rev. 31755), deliberately excluding other
//! dialects' special-purpose keywords. Each word becomes one counting
//! feature, matched at word boundaries.

/// The MySQL 5.5 reserved words used as features (lowercased).
pub const MYSQL_RESERVED: &[&str] = &[
    "accessible",
    "add",
    "all",
    "alter",
    "analyze",
    "and",
    "as",
    "asc",
    "asensitive",
    "before",
    "between",
    "bigint",
    "binary",
    "blob",
    "both",
    "by",
    "call",
    "cascade",
    "case",
    "change",
    "char",
    "character",
    "check",
    "collate",
    "column",
    "condition",
    "constraint",
    "continue",
    "convert",
    "create",
    "cross",
    "current_date",
    "current_time",
    "current_timestamp",
    "current_user",
    "cursor",
    "database",
    "databases",
    "day_hour",
    "day_microsecond",
    "day_minute",
    "day_second",
    "dec",
    "decimal",
    "declare",
    "default",
    "delayed",
    "delete",
    "desc",
    "describe",
    "deterministic",
    "distinct",
    "distinctrow",
    "div",
    "double",
    "drop",
    "dual",
    "each",
    "else",
    "elseif",
    "enclosed",
    "escaped",
    "exists",
    "exit",
    "explain",
    "false",
    "fetch",
    "float",
    "float4",
    "float8",
    "for",
    "force",
    "foreign",
    "from",
    "fulltext",
    "grant",
    "group",
    "having",
    "high_priority",
    "hour_microsecond",
    "hour_minute",
    "hour_second",
    "if",
    "ignore",
    "in",
    "index",
    "infile",
    "inner",
    "inout",
    "insensitive",
    "insert",
    "int",
    "int1",
    "int2",
    "int3",
    "int4",
    "int8",
    "integer",
    "interval",
    "into",
    "is",
    "iterate",
    "join",
    "key",
    "keys",
    "kill",
    "leading",
    "leave",
    "left",
    "like",
    "limit",
    "linear",
    "lines",
    "load",
    "localtime",
    "localtimestamp",
    "lock",
    "long",
    "longblob",
    "longtext",
    "loop",
    "low_priority",
    "master_ssl_verify_server_cert",
    "match",
    "maxvalue",
    "mediumblob",
    "mediumint",
    "mediumtext",
    "middleint",
    "minute_microsecond",
    "minute_second",
    "mod",
    "modifies",
    "natural",
    "not",
    "no_write_to_binlog",
    "null",
    "numeric",
    "on",
    "optimize",
    "option",
    "optionally",
    "or",
    "order",
    "out",
    "outer",
    "outfile",
    "precision",
    "primary",
    "procedure",
    "purge",
    "range",
    "read",
    "reads",
    "read_write",
    "references",
    "regexp",
    "release",
    "rename",
    "repeat",
    "replace",
    "require",
    "resignal",
    "restrict",
    "return",
    "revoke",
    "right",
    "rlike",
    "schema",
    "schemas",
    "second_microsecond",
    "select",
    "sensitive",
    "separator",
    "set",
    "show",
    "signal",
    "smallint",
    "spatial",
    "specific",
    "sql",
    "sqlexception",
    "sqlstate",
    "sqlwarning",
    "sql_big_result",
    "sql_calc_found_rows",
    "sql_small_result",
    "ssl",
    "starting",
    "straight_join",
    "table",
    "terminated",
    "then",
    "tinyblob",
    "tinyint",
    "tinytext",
    "to",
    "trailing",
    "trigger",
    "true",
    "undo",
    "union",
    "unique",
    "unlock",
    "unsigned",
    "update",
    "usage",
    "use",
    "using",
    "utc_date",
    "utc_time",
    "utc_timestamp",
    "values",
    "varbinary",
    "varchar",
    "varcharacter",
    "varying",
    "when",
    "where",
    "while",
    "with",
    "write",
    "xor",
    "year_month",
    "zerofill",
];

/// Short reserved words that flood benign text (`as`, `in`, `is`,
/// `to`, `on`, `or`, ...) are still included — the paper's pruning
/// step and logistic regression are what down-weights them, not the
/// source list.
pub fn word_boundary_pattern(word: &str) -> String {
    format!(r"\b{}\b", regex_escape(word))
}

/// Escapes regex metacharacters in a literal word.
pub fn regex_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        if "\\.+*?()|[]{}^$".contains(c) {
            out.push('\\');
        }
        out.push(c);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use psigene_regex::Regex;

    #[test]
    fn word_list_is_lowercase_and_unique() {
        let mut seen = std::collections::HashSet::new();
        for w in MYSQL_RESERVED {
            assert_eq!(*w, w.to_lowercase(), "{w} not lowercase");
            assert!(seen.insert(w), "{w} duplicated");
        }
        assert!(
            MYSQL_RESERVED.len() >= 200,
            "list too short: {}",
            MYSQL_RESERVED.len()
        );
    }

    #[test]
    fn core_sqli_words_present() {
        for w in [
            "select",
            "union",
            "insert",
            "delete",
            "char",
            "varchar",
            "current_user",
        ] {
            assert!(MYSQL_RESERVED.contains(&w), "{w} missing");
        }
    }

    #[test]
    fn boundary_pattern_matches_words_not_substrings() {
        let re = Regex::new(&word_boundary_pattern("union")).unwrap();
        assert!(re.is_match(b"1 union select"));
        assert!(re.is_match(b"union select"));
        assert!(re.is_match(b"x;union"));
        assert!(!re.is_match(b"reunion party"));
        assert!(!re.is_match(b"unions"));
    }

    #[test]
    fn adjacent_words_both_count() {
        let re = Regex::new(&word_boundary_pattern("union")).unwrap();
        assert_eq!(re.count_all(b"union union,union"), 3);
    }

    #[test]
    fn escape_handles_metacharacters() {
        assert_eq!(regex_escape("a.b+c"), r"a\.b\+c");
        let re = Regex::new(&regex_escape("a(b)|c")).unwrap();
        assert!(re.is_match(b"xa(b)|cy"));
    }
}
