//! Incremental signature updates (the paper's Experiment 2 as an
//! operational story): a deployed system sees fresh scanner traffic,
//! folds a portion of it back into training, and its detection rate
//! on the remaining traffic improves — no manual signature editing.
//!
//! ```text
//! cargo run --release -p psigene --example signature_update
//! ```

use psigene::{PipelineConfig, Psigene};
use psigene_corpus::sqlmap::{self, SqlmapConfig};
use psigene_rulesets::DetectionEngine;
use rand::SeedableRng;

fn main() {
    println!("training the initial signature set...");
    let system = Psigene::train(&PipelineConfig {
        crawl_samples: 1500,
        benign_train: 10_000,
        cluster_sample_cap: 900,
        ..PipelineConfig::default()
    });
    println!("initial signatures: {}\n", system.signatures().len());

    // A fresh SQLmap campaign hits the network.
    let mut campaign = sqlmap::generate(&SqlmapConfig {
        samples: 1000,
        ..Default::default()
    });
    campaign.shuffle(&mut rand_chacha::ChaCha8Rng::seed_from_u64(42));

    let tpr = |sys: &Psigene, ds: &psigene_corpus::Dataset| -> f64 {
        let hits = ds
            .samples
            .iter()
            .filter(|s| sys.evaluate(&s.request).flagged)
            .count();
        hits as f64 / ds.len().max(1) as f64
    };

    println!(
        "day 0: detection rate on the campaign = {:.2}%",
        tpr(&system, &campaign) * 100.0
    );

    // The operator feeds captured samples back in, 20 % at a time —
    // "the incremental training is also an automatic process" (§III-E).
    let mut current = system;
    for day in 1..=2 {
        let (captured, remaining) = campaign.split_fraction(0.2 * day as f64);
        let (updated, stats) = current.retrain_with(&captured, 4);
        println!(
            "day {day}: retrained with {} captured samples ({} assigned to clusters, {} signatures refitted)",
            captured.len(),
            stats.assigned,
            stats.retrained_signatures
        );
        println!(
            "       detection rate on unseen remainder = {:.2}%",
            tpr(&updated, &remaining) * 100.0
        );
        current = updated;
    }

    println!("\nper-signature training set growth:");
    for s in current.signatures() {
        println!(
            "  signature {}: {} training samples",
            s.id, s.training_samples
        );
    }
}
