//! An inline IDS gateway serving mixed traffic: a trained pSigene
//! system behind the sharded `psigene-serve` gateway, with concurrent
//! submitters, a mid-stream hot signature reload (the output of
//! incremental retraining swapped in under load) and the serving
//! telemetry the paper's operational phase (§II-D) implies.
//!
//! ```text
//! cargo run --release -p psigene-serve --example ids_gateway
//! cargo run --release -p psigene-serve --example ids_gateway -- --quick
//! ```

use psigene::{PipelineConfig, Psigene};
use psigene_corpus::{
    arachni::{self, ArachniConfig},
    benign::{self, BenignConfig},
    sqlmap::{self, SqlmapConfig},
    Dataset,
};
use psigene_learn::ConfusionMatrix;
use psigene_rulesets::DetectionEngine;
use psigene_serve::{Gateway, GatewayConfig, LatencySlo, OverloadPolicy, SignatureStore};
use psigene_telemetry::insight::SloConfig;
use rand::SeedableRng;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let (crawl, benign_train, cap, stream_benign, stream_attacks) = if quick {
        (300, 1200, 300, 400, 60)
    } else {
        (1500, 10_000, 900, 2000, 150)
    };

    println!("training pSigene...");
    let system = Psigene::train(&PipelineConfig {
        crawl_samples: crawl,
        benign_train,
        cluster_sample_cap: cap,
        ..PipelineConfig::default()
    });
    println!("trained {} signatures", system.signatures().len());

    // The gateway: sharded workers over the hot-swappable store,
    // shedding fail-open if the queues ever hit their bound.
    let shards = std::thread::available_parallelism()
        .map(|n| n.get().min(4))
        .unwrap_or(4);
    // Serve the drift-monitored engine: every evaluated request also
    // feeds the feature/score sketches behind the `drift.*` gauges.
    let serving = system.with_insight(true);
    let store = SignatureStore::new(Arc::new(serving.clone()) as Arc<dyn DetectionEngine>);
    let gateway = Gateway::start(
        Arc::clone(&store),
        GatewayConfig {
            shards,
            queue_capacity: 256,
            policy: OverloadPolicy::Shed { fail_open: true },
            ..GatewayConfig::default()
        },
    );
    // Latency SLO over the serving histogram: 99 % within 5 ms.
    let slo = LatencySlo::new(5_000_000, SloConfig::default());
    slo.tick();

    // A mixed stream: mostly benign with scanner traffic woven in.
    let mut stream = Dataset::new();
    stream.extend(benign::generate(&BenignConfig {
        requests: stream_benign,
        include_novel_tail: true,
        ..Default::default()
    }));
    stream.extend(arachni::generate(&ArachniConfig {
        samples: stream_attacks,
        ..Default::default()
    }));
    stream.shuffle(&mut rand_chacha::ChaCha8Rng::seed_from_u64(0xf00d));

    println!(
        "serving {} requests ({} attacks hidden in the stream) on {} shards\n",
        stream.len(),
        stream.attack_count(),
        shards
    );

    // Concurrent submitters: each owns a stripe of the stream; one
    // extra thread performs a hot signature reload mid-traffic with
    // the incremental trainer's output.
    let n_submitters = 4usize;
    let tp = AtomicU64::new(0);
    let fp = AtomicU64::new(0);
    let fnn = AtomicU64::new(0);
    let tn = AtomicU64::new(0);
    let shed = AtomicU64::new(0);
    std::thread::scope(|s| {
        for t in 0..n_submitters {
            let gateway = &gateway;
            let stream = &stream;
            let (tp, fp, fnn, tn, shed) = (&tp, &fp, &fnn, &tn, &shed);
            s.spawn(move || {
                for sample in stream.samples.iter().skip(t).step_by(n_submitters) {
                    let verdict = gateway.check(sample.request.clone());
                    if verdict.is_shed() {
                        shed.fetch_add(1, Ordering::Relaxed);
                        continue;
                    }
                    let counter = match (sample.label.is_attack(), verdict.flagged()) {
                        (true, true) => tp,
                        (true, false) => fnn,
                        (false, true) => fp,
                        (false, false) => tn,
                    };
                    counter.fetch_add(1, Ordering::Relaxed);
                }
            });
        }
        // Hot reload under load: fold fresh attack samples in via the
        // incremental trainer, then atomically swap the result live —
        // versioned, so the new model's metadata lands on the
        // `serve.model.*` gauges the moment it starts serving.
        let store = &store;
        let system = &system;
        let gateway_ref = &gateway;
        s.spawn(move || {
            let fresh = sqlmap::generate(&SqlmapConfig {
                samples: if quick { 40 } else { 200 },
                seed: 0x1e10ad,
                ..Default::default()
            });
            let (retrained, stats) = system.retrain_with(&fresh, 2);
            let meta = psigene_serve::control::ModelMeta {
                model_id: 2,
                trained_at: gateway_ref.stats().served,
                training_samples: fresh.len(),
            };
            let version =
                store.swap_versioned(Arc::new(retrained) as Arc<dyn DetectionEngine>, meta);
            println!(
                "hot reload: {} samples assigned, {} signatures refitted → live version {}",
                stats.assigned, stats.retrained_signatures, version
            );
        });
    });

    let mut cm = ConfusionMatrix::default();
    for _ in 0..tp.load(Ordering::Relaxed) {
        cm.record(true, true);
    }
    for _ in 0..fnn.load(Ordering::Relaxed) {
        cm.record(true, false);
    }
    for _ in 0..fp.load(Ordering::Relaxed) {
        cm.record(false, true);
    }
    for _ in 0..tn.load(Ordering::Relaxed) {
        cm.record(false, false);
    }

    println!(
        "\n{:<26} {:>8} {:>8} {:>10} {:>8}",
        "ENGINE", "TPR", "FPR", "PRECISION", "F1"
    );
    println!(
        "{:<26} {:>7.1}% {:>7.2}% {:>9.1}% {:>8.3}",
        store.current().name(),
        cm.tpr() * 100.0,
        cm.fpr() * 100.0,
        cm.precision() * 100.0,
        cm.f1()
    );

    // What the gateway observed about itself while serving. Exemplar
    // traces are read before shutdown consumes the gateway.
    slo.tick();
    let exemplars = gateway.trace_exemplars();
    let stats = gateway.shutdown();
    println!(
        "\ngateway: {} submitted / {} served / {} shed (signature version {})",
        stats.submitted,
        stats.served,
        stats.shed,
        store.version()
    );
    if let Some(meta) = store.model_meta() {
        println!(
            "live model: id {} / trained at request {} / {} training samples",
            meta.model_id, meta.trained_at, meta.training_samples
        );
    }
    // Per-row extraction telemetry is window-buffered per thread; the
    // worker scratches flushed when `shutdown()` joined them, and this
    // flushes the main thread's window so the snapshot is complete.
    psigene_features::extract::flush_extract_metrics();
    let snap = psigene_telemetry::global().snapshot();
    if let Some(h) = snap.histograms.get("serve.latency_ns") {
        if let (Some(p50), Some(p99)) = (h.p50(), h.p99()) {
            println!(
                "end-to-end serve latency: p50 {:.1} µs / p99 {:.1} µs over {} requests",
                p50 as f64 / 1000.0,
                p99 as f64 / 1000.0,
                h.count()
            );
        }
    }
    if let Some(h) = snap.histograms.get("detector.latency_ns") {
        if let (Some(p50), Some(p99)) = (h.p50(), h.p99()) {
            println!(
                "detector-only latency:    p50 {:.1} µs / p99 {:.1} µs",
                p50 as f64 / 1000.0,
                p99 as f64 / 1000.0
            );
        }
    }
    // The fused matcher's internals: lazy-DFA cache occupancy and how
    // much of the byte stream the quiescent-state accelerator jumped.
    if let Some(&states) = snap.gauges.get("regex.fused.cache_states") {
        let hit = snap
            .gauges
            .get("regex.fused.cache_hit_ratio")
            .copied()
            .unwrap_or(0.0);
        let accel_states = snap
            .gauges
            .get("regex.fused.accel_states")
            .copied()
            .unwrap_or(0.0);
        let skip_ratio = snap
            .gauges
            .get("regex.fused.accel_skip_ratio")
            .copied()
            .unwrap_or(0.0);
        let skipped = snap
            .counters
            .get("regex.fused.accel_bytes_skipped")
            .copied()
            .unwrap_or(0);
        println!(
            "fused DFA: {:.0} cached states ({:.1}% cache hits) / \
             peak {:.0} accelerated states / {} bytes skipped (window skip ratio {:.3})",
            states,
            hit * 100.0,
            accel_states,
            skipped,
            skip_ratio
        );
    }
    let mut hits: Vec<(&str, u64)> = snap
        .counters
        .iter()
        .filter_map(|(k, &v)| k.strip_prefix("detector.sig_match.").map(|id| (id, v)))
        .collect();
    hits.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(b.0)));
    if !hits.is_empty() {
        println!("per-signature hit counts:");
        for (id, n) in &hits {
            println!("  signature {id:>3}: {n:>6} hits");
        }
    }

    // Drift, SLO burn and the slowest sampled request — the
    // observability readout a control plane would alert on.
    if let Some(drift) = serving.drift_scores() {
        let fmt = |v: Option<f64>| v.map_or("-".to_string(), |v| format!("{v:.4}"));
        println!(
            "\ndrift: features PSI {} / KL {} over {} windows, max PSI {}",
            fmt(drift.features_psi),
            fmt(drift.features_kl),
            drift.windows,
            fmt(drift.max_psi())
        );
    }
    let burn = slo.burn();
    let fmt_burn = |v: Option<f64>| v.map_or("-".to_string(), |v| format!("{v:.2}"));
    println!(
        "SLO (99% < 5 ms): fast burn {} / slow burn {} / alerting: {}",
        fmt_burn(burn.fast),
        fmt_burn(burn.slow),
        slo.alerting()
    );
    if let Some(slowest) = exemplars.first() {
        println!(
            "\nslowest sampled request (1 of {} exemplars, 1-in-{} sampling):",
            exemplars.len(),
            gateway_trace_rate()
        );
        print!("{}", slowest.render_tree());
    }

    // The same registry, rendered for a Prometheus scrape (histogram
    // bucket series elided for readability).
    let exposition = psigene_telemetry::global().export_prometheus();
    let mut elided = 0usize;
    println!("\nPrometheus exposition:");
    for line in exposition.lines() {
        if line.contains("_bucket{") {
            elided += 1;
            continue;
        }
        println!("  {line}");
    }
    println!("  ... ({elided} histogram bucket series elided)");
}

fn gateway_trace_rate() -> u64 {
    GatewayConfig::default().trace.sample_every
}
