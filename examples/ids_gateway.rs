//! A miniature IDS gateway: four detection engines watch the same
//! mixed traffic stream and their verdicts are compared side by side
//! — the situation the paper's Table V abstracts.
//!
//! ```text
//! cargo run --release -p psigene --example ids_gateway
//! ```

use psigene::{PipelineConfig, Psigene};
use psigene_corpus::{
    arachni::{self, ArachniConfig},
    benign::{self, BenignConfig},
    Dataset, Label,
};
use psigene_learn::ConfusionMatrix;
use psigene_rulesets::{BroEngine, DetectionEngine, ModsecEngine, SnortEngine};
use rand::SeedableRng;

fn main() {
    println!("training pSigene...");
    let system = Psigene::train(&PipelineConfig {
        crawl_samples: 1500,
        benign_train: 10_000,
        cluster_sample_cap: 900,
        ..PipelineConfig::default()
    });
    let bro = BroEngine::new();
    let snort = SnortEngine::new();
    let modsec = ModsecEngine::new();
    let engines: Vec<&dyn DetectionEngine> = vec![&system, &modsec, &snort, &bro];

    // A mixed stream: mostly benign with scanner traffic woven in.
    let mut stream = Dataset::new();
    stream.extend(benign::generate(&BenignConfig {
        requests: 2000,
        include_novel_tail: true,
        ..Default::default()
    }));
    stream.extend(arachni::generate(&ArachniConfig {
        samples: 150,
        ..Default::default()
    }));
    stream.shuffle(&mut rand_chacha::ChaCha8Rng::seed_from_u64(0xf00d));

    println!(
        "processing {} requests ({} attacks hidden in the stream)\n",
        stream.len(),
        stream.attack_count()
    );

    let mut matrices = vec![ConfusionMatrix::default(); engines.len()];
    let mut shown = 0;
    for sample in &stream.samples {
        let is_attack = sample.label.is_attack();
        let verdicts: Vec<bool> = engines
            .iter()
            .map(|e| e.evaluate(&sample.request).flagged)
            .collect();
        for (m, &flagged) in matrices.iter_mut().zip(&verdicts) {
            m.record(is_attack, flagged);
        }
        // Print the first few disagreements — the interesting cases.
        let agree = verdicts.iter().all(|&v| v == verdicts[0]);
        if !agree && shown < 8 {
            shown += 1;
            let family = match sample.label {
                Label::Attack(f) => f.name(),
                Label::Benign => "benign",
            };
            println!(
                "disagreement on {:<18} {:<60} {}",
                format!("[{family}]"),
                truncate(&sample.request.request_target(), 60),
                engines
                    .iter()
                    .zip(&verdicts)
                    .map(|(e, v)| format!(
                        "{}:{}",
                        short(e.name()),
                        if *v { "ALERT" } else { "ok" }
                    ))
                    .collect::<Vec<_>>()
                    .join("  ")
            );
        }
    }

    println!(
        "\n{:<26} {:>8} {:>8} {:>10} {:>8}",
        "ENGINE", "TPR", "FPR", "PRECISION", "F1"
    );
    for (e, m) in engines.iter().zip(&matrices) {
        println!(
            "{:<26} {:>7.1}% {:>7.2}% {:>9.1}% {:>8.3}",
            e.name(),
            m.tpr() * 100.0,
            m.fpr() * 100.0,
            m.precision() * 100.0,
            m.f1()
        );
    }

    // What the pSigene engine observed about itself while serving the
    // stream — latency distribution and which signatures fired.
    let snap = system.telemetry_snapshot();
    if let Some(h) = snap.histograms.get("detector.latency_ns") {
        if let (Some(p50), Some(p99)) = (h.p50(), h.p99()) {
            println!(
                "\npSigene detection latency: p50 {:.1} µs / p99 {:.1} µs over {} requests",
                p50 as f64 / 1000.0,
                p99 as f64 / 1000.0,
                h.count()
            );
        }
    }
    let mut hits: Vec<(&str, u64)> = snap
        .counters
        .iter()
        .filter_map(|(k, &v)| k.strip_prefix("detector.sig_match.").map(|id| (id, v)))
        .collect();
    hits.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(b.0)));
    if !hits.is_empty() {
        println!("per-signature hit counts:");
        for (id, n) in &hits {
            println!("  signature {id:>3}: {n:>6} hits");
        }
    }
}

fn short(name: &str) -> &str {
    name.split_whitespace().next().unwrap_or(name)
}

fn truncate(s: &str, n: usize) -> String {
    if s.chars().count() <= n {
        s.to_string()
    } else {
        s.chars().take(n - 1).collect::<String>() + "…"
    }
}
