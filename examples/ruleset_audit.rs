//! Audit of the bundled rulesets — the observations of the paper's
//! introduction (§I) made runnable: disabled-rule shares, near-
//! duplicate signatures, and overly simple regexes that fire on
//! benign traffic.
//!
//! ```text
//! cargo run --release -p psigene --example ruleset_audit
//! ```

use psigene::psigene_http::HttpRequest;
use psigene::psigene_rulesets::{
    bro::bro_rules,
    modsec::modsec_rules,
    render_table_iv,
    snort::{et_generated_rules, snort_rules},
    table_iv,
};
use psigene::psigene_rulesets::{DetectionEngine, SnortEngine};

fn main() {
    // Table IV: structural statistics per ruleset.
    println!("{}", render_table_iv(&table_iv()));

    // Observation 1: large disabled shares.
    let snort = snort_rules();
    let disabled = snort.iter().filter(|r| !r.enabled).count();
    println!(
        "observation 1: {disabled}/{} Snort SQLi rules ship disabled; all {} generated \
         ET rules do",
        snort.len(),
        et_generated_rules().len()
    );

    // Observation 2: near-duplicate rules (the paper's 19439/19440
    // example: same regex except the last character).
    let mut near_dupes = 0;
    for (i, a) in snort.iter().enumerate() {
        for b in snort.iter().skip(i + 1) {
            if let (
                psigene::psigene_rulesets::Matcher::Regex(ra),
                psigene::psigene_rulesets::Matcher::Regex(rb),
            ) = (&a.matcher, &b.matcher)
            {
                let (pa, pb) = (ra.pattern(), rb.pattern());
                let min = pa.len().min(pb.len());
                if min > 4 && pa.len().abs_diff(pb.len()) <= 1 && pa[..min - 1] == pb[..min - 1] {
                    near_dupes += 1;
                    println!(
                        "observation 2: rules {} and {} could be merged ({pa:?} vs {pb:?})",
                        a.id, b.id
                    );
                }
            }
        }
    }
    if near_dupes == 0 {
        println!("observation 2: no near-duplicate pairs found");
    }

    // Observation 3: simple regexes fire on benign SQL-looking
    // traffic (the paper's `.+UNION\s+SELECT` critique).
    let engine = SnortEngine::new();
    let benign_but_sqlish = [
        "query=select+name+from+dept_report&format=csv",
        "q=select+count(*)+from+enrollment",
    ];
    for q in benign_but_sqlish {
        let d = engine.evaluate(&HttpRequest::get("reports.example", "/report.php", q));
        println!(
            "observation 3: benign report query {:?} -> {}",
            q,
            if d.flagged {
                format!("FALSE ALARM (rule {:?})", d.matched_rules)
            } else {
                "passed".to_string()
            }
        );
    }

    // Regex-length distributions per ruleset.
    println!("\nregex length distribution (chars):");
    for (name, rules) in [
        ("bro", bro_rules()),
        ("snort", snort_rules()),
        ("modsec", modsec_rules()),
    ] {
        let mut lens: Vec<usize> = rules
            .iter()
            .filter(|r| r.matcher.is_regex())
            .map(|r| r.matcher.pattern_len())
            .collect();
        lens.sort_unstable();
        let median = lens[lens.len() / 2];
        println!(
            "  {name:<8} n={:<5} median={median:<6} min={} max={}",
            lens.len(),
            lens.first().unwrap(),
            lens.last().unwrap()
        );
    }
}
