//! Quickstart: train a small pSigene system and classify a few
//! requests.
//!
//! ```text
//! cargo run --release -p psigene --example quickstart
//! ```

use psigene::{PipelineConfig, Psigene};
use psigene_http::HttpRequest;
use psigene_rulesets::DetectionEngine;

fn main() {
    // Train at a small scale so the example finishes in seconds. The
    // pipeline still runs all four phases: crawl the simulated
    // portals, extract features, bicluster, fit one logistic
    // regression signature per cluster.
    println!("training pSigene (small scale)...");
    let config = PipelineConfig {
        crawl_samples: 1200,
        benign_train: 8_000,
        cluster_sample_cap: 800,
        ..PipelineConfig::default()
    };
    let system = Psigene::train(&config);

    let report = system.report();
    println!(
        "\n{} signatures from {} -> {} features (matrix {:.0}% sparse, cophenetic {:.2})\n",
        system.signatures().len(),
        report.initial_features,
        report.pruned_features,
        report.matrix_sparsity * 100.0,
        report.cophenetic_correlation,
    );

    let requests = [
        (
            "classic union exfiltration",
            HttpRequest::get(
                "shop.example",
                "/item.php",
                "id=-1+UNION+SELECT+1,concat(user(),0x3a,version()),3--+-",
            ),
        ),
        (
            "quote-breakout tautology",
            HttpRequest::get("blog.example", "/post.php", "id=1%27+or+%271%27%3D%271"),
        ),
        (
            "time-blind probe",
            HttpRequest::get("app.example", "/view.php", "page=1+AND+SLEEP(5)--"),
        ),
        (
            "plain catalog browsing",
            HttpRequest::get("shop.example", "/item.php", "id=1442&lang=en"),
        ),
        (
            "benign search with SQL words",
            HttpRequest::get("lib.example", "/search.php", "q=student+union+events"),
        ),
    ];
    for (label, request) in requests {
        let verdict = system.evaluate(&request);
        println!(
            "{:>8}  p={:.3}  {label}: {}",
            if verdict.flagged { "ALERT" } else { "ok" },
            verdict.score,
            request.request_target(),
        );
    }
}
