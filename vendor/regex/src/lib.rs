//! Offline stand-in for the `regex` crate.
//!
//! The build environment cannot fetch crates.io, so the real crate is
//! unavailable. This stub exposes `regex::bytes::{Regex,
//! RegexBuilder}` backed by the workspace's own `psigene-regex`
//! engine. The only in-repo consumer is `psigene-regex`'s differential
//! test, which with this stub degenerates to a self-comparison — it
//! stays compiling and green, and becomes a true differential test
//! again the moment the real crate is restored.

/// Byte-oriented regexes (`regex::bytes` API shape).
pub mod bytes {
    use std::fmt;

    /// A compiled regular expression for byte haystacks.
    #[derive(Debug, Clone)]
    pub struct Regex {
        inner: psigene_regex::Regex,
    }

    /// A match with byte offsets.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct Match {
        start: usize,
        end: usize,
    }

    impl Match {
        /// Start offset (inclusive).
        pub fn start(&self) -> usize {
            self.start
        }

        /// End offset (exclusive).
        pub fn end(&self) -> usize {
            self.end
        }
    }

    /// Compile error.
    #[derive(Debug, Clone)]
    pub struct Error(psigene_regex::Error);

    impl fmt::Display for Error {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            fmt::Display::fmt(&self.0, f)
        }
    }

    impl std::error::Error for Error {}

    /// Builder matching the real crate's chaining shape.
    #[derive(Debug, Clone)]
    pub struct RegexBuilder {
        pattern: String,
        case_insensitive: bool,
    }

    impl RegexBuilder {
        /// Starts building a regex for `pattern`.
        pub fn new(pattern: &str) -> RegexBuilder {
            RegexBuilder {
                pattern: pattern.to_string(),
                case_insensitive: false,
            }
        }

        /// Unicode mode toggle — accepted and ignored (the backing
        /// engine is byte-level, i.e. always `unicode(false)`).
        pub fn unicode(&mut self, _yes: bool) -> &mut RegexBuilder {
            self
        }

        /// ASCII case-insensitive matching.
        pub fn case_insensitive(&mut self, yes: bool) -> &mut RegexBuilder {
            self.case_insensitive = yes;
            self
        }

        /// Compiles the pattern.
        pub fn build(&self) -> Result<Regex, Error> {
            psigene_regex::Regex::builder()
                .case_insensitive(self.case_insensitive)
                .build(&self.pattern)
                .map(|inner| Regex { inner })
                .map_err(Error)
        }
    }

    impl Regex {
        /// Compiles `pattern` with default options.
        pub fn new(pattern: &str) -> Result<Regex, Error> {
            RegexBuilder::new(pattern).build()
        }

        /// Whether the haystack contains a match.
        pub fn is_match(&self, hay: &[u8]) -> bool {
            self.inner.is_match(hay)
        }

        /// Leftmost-first match.
        pub fn find(&self, hay: &[u8]) -> Option<Match> {
            self.inner.find(hay).map(|m| Match {
                start: m.start(),
                end: m.end(),
            })
        }

        /// Iterator over non-overlapping matches.
        pub fn find_iter<'r, 'h>(&'r self, hay: &'h [u8]) -> impl Iterator<Item = Match> + 'r
        where
            'h: 'r,
        {
            self.inner.find_iter(hay).map(|m| Match {
                start: m.start(),
                end: m.end(),
            })
        }
    }
}

#[cfg(test)]
mod tests {
    use super::bytes::RegexBuilder;

    #[test]
    fn builder_chain_compiles_and_matches() {
        let re = RegexBuilder::new(r"union\s+select")
            .unicode(false)
            .case_insensitive(true)
            .build()
            .expect("compiles");
        assert!(re.is_match(b"1 UNION SELECT 2"));
        let m = re.find(b"x union select y").expect("match");
        assert_eq!((m.start(), m.end()), (2, 14));
    }
}
