//! Offline stand-in for `parking_lot`.
//!
//! Wraps `std::sync::{Mutex, RwLock}` behind parking_lot's signatures:
//! `lock()`/`read()`/`write()` return guards directly (no poison
//! `Result`). A poisoned std lock is recovered by taking the inner
//! guard — parking_lot has no poisoning, so this matches its
//! semantics of continuing after a panicking holder.

use std::sync::{self, PoisonError};

/// Guard types are std's (the API surface this workspace needs is the
/// same).
pub type MutexGuard<'a, T> = sync::MutexGuard<'a, T>;
/// Shared-read guard.
pub type RwLockReadGuard<'a, T> = sync::RwLockReadGuard<'a, T>;
/// Exclusive-write guard.
pub type RwLockWriteGuard<'a, T> = sync::RwLockWriteGuard<'a, T>;

/// A mutual-exclusion lock that does not poison.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized> {
    inner: sync::Mutex<T>,
}

impl<T> Mutex<T> {
    /// Creates the lock.
    pub const fn new(value: T) -> Mutex<T> {
        Mutex {
            inner: sync::Mutex::new(value),
        }
    }

    /// Consumes the lock, returning the value.
    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.inner.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Tries to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(g) => Some(g),
            Err(sync::TryLockError::Poisoned(p)) => Some(p.into_inner()),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires `&mut self`).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

/// A reader–writer lock that does not poison.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized> {
    inner: sync::RwLock<T>,
}

impl<T> RwLock<T> {
    /// Creates the lock.
    pub const fn new(value: T) -> RwLock<T> {
        RwLock {
            inner: sync::RwLock::new(value),
        }
    }

    /// Consumes the lock, returning the value.
    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires a shared read guard.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.inner.read().unwrap_or_else(PoisonError::into_inner)
    }

    /// Acquires an exclusive write guard.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.inner.write().unwrap_or_else(PoisonError::into_inner)
    }

    /// Mutable access without locking (requires `&mut self`).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn mutex_counts_across_threads() {
        let m = Arc::new(Mutex::new(0u64));
        let mut handles = Vec::new();
        for _ in 0..8 {
            let m = Arc::clone(&m);
            handles.push(std::thread::spawn(move || {
                for _ in 0..1000 {
                    *m.lock() += 1;
                }
            }));
        }
        for h in handles {
            h.join().expect("thread");
        }
        assert_eq!(*m.lock(), 8000);
    }

    #[test]
    fn rwlock_read_write() {
        let l = RwLock::new(vec![1, 2, 3]);
        assert_eq!(l.read().len(), 3);
        l.write().push(4);
        assert_eq!(l.read().len(), 4);
    }
}
