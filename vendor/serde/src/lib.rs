//! Offline stand-in for `serde`.
//!
//! The build environment has no network access, so the real crate
//! cannot be fetched. The workspace only uses serde as derive
//! annotations on plain data types (no serializer is ever driven), so
//! this stub provides the two trait names with blanket impls and
//! re-exports no-op derive macros. Anything that type-checks against
//! this stub also type-checks against real serde's derives.

pub use serde_derive::{Deserialize, Serialize};

/// Marker stand-in for `serde::Serialize` (blanket-implemented).
pub trait Serialize {}
impl<T: ?Sized> Serialize for T {}

/// Marker stand-in for `serde::Deserialize` (blanket-implemented).
pub trait Deserialize<'de> {}
impl<'de, T: ?Sized> Deserialize<'de> for T {}

/// Serialization half of the data model (name parity only).
pub mod ser {
    pub use crate::Serialize;
}

/// Deserialization half of the data model (name parity only).
pub mod de {
    pub use crate::Deserialize;

    /// Marker stand-in for `serde::de::DeserializeOwned`.
    pub trait DeserializeOwned {}
    impl<T: ?Sized> DeserializeOwned for T {}
}
