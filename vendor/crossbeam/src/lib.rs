//! Offline stand-in for `crossbeam`.
//!
//! Provides the `crossbeam::scope` API shape over
//! `std::thread::scope` (std has had scoped threads since 1.63, after
//! crossbeam pioneered them) and the `crossbeam::channel` MPMC
//! channels (see [`channel`]). Only the pieces this workspace uses
//! are implemented: `scope`, `Scope::spawn` (whose closure receives
//! the scope, crossbeam-style), `ScopedJoinHandle::join`, and the
//! bounded/unbounded channel constructors with blocking and
//! non-blocking send/recv.

pub mod channel;

use std::thread;

/// Scoped-thread handle (join returns the closure's result or the
/// thread's panic payload).
pub struct ScopedJoinHandle<'scope, T> {
    inner: thread::ScopedJoinHandle<'scope, T>,
}

impl<'scope, T> ScopedJoinHandle<'scope, T> {
    /// Waits for the thread and returns its result.
    pub fn join(self) -> thread::Result<T> {
        self.inner.join()
    }
}

/// A scope in which borrowed-data threads can be spawned.
pub struct Scope<'scope, 'env: 'scope> {
    inner: &'scope thread::Scope<'scope, 'env>,
}

impl<'scope, 'env> Scope<'scope, 'env> {
    /// Spawns a thread inside the scope. As in crossbeam, the closure
    /// receives the scope so it can spawn nested threads.
    pub fn spawn<F, T>(&self, f: F) -> ScopedJoinHandle<'scope, T>
    where
        F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
        T: Send + 'scope,
    {
        let inner = self.inner;
        ScopedJoinHandle {
            inner: inner.spawn(move || f(&Scope { inner })),
        }
    }
}

/// Runs `f` with a scope; all threads spawned in it are joined before
/// this returns. Crossbeam returns `Err` when a child panicked without
/// being joined; std's scope propagates such panics instead, so this
/// stub's `Ok` path is the only one that materializes — call sites
/// that `.expect()` the result behave identically.
pub fn scope<'env, F, R>(f: F) -> thread::Result<R>
where
    F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
{
    Ok(thread::scope(|s| f(&Scope { inner: s })))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scoped_threads_borrow_and_join() {
        let data = vec![1u64, 2, 3, 4, 5, 6, 7, 8];
        let total: u64 = scope(|s| {
            let mut handles = Vec::new();
            for chunk in data.chunks(3) {
                handles.push(s.spawn(move |_| chunk.iter().sum::<u64>()));
            }
            handles.into_iter().map(|h| h.join().expect("worker")).sum()
        })
        .expect("scope");
        assert_eq!(total, 36);
    }

    #[test]
    fn nested_spawn_through_scope_arg() {
        let n = scope(|s| {
            s.spawn(|inner| inner.spawn(|_| 21).join().expect("inner") * 2)
                .join()
                .expect("outer")
        })
        .expect("scope");
        assert_eq!(n, 42);
    }
}
