//! Offline stand-in for `crossbeam-channel`: multi-producer
//! multi-consumer channels over `std`'s `Mutex` + `Condvar`.
//!
//! Only the API surface this workspace uses is implemented:
//! [`bounded`] / [`unbounded`] constructors, blocking [`Sender::send`]
//! and [`Receiver::recv`], the non-blocking [`Sender::try_send`] /
//! [`Receiver::try_recv`], and queue introspection (`len`,
//! `is_empty`, `capacity`). Disconnect semantics match crossbeam:
//! once every `Sender` is dropped a receiver drains the remaining
//! messages and then gets `RecvError`; once every `Receiver` is
//! dropped a send fails with the message handed back.
//!
//! Unlike crossbeam's lock-free segmented queues, this stand-in takes
//! one mutex per operation — plenty for the workload sizes the
//! workspace's gateway and benches push through it, and exactly as
//! observable from the outside.

use std::collections::VecDeque;
use std::fmt;
use std::sync::{Arc, Condvar, Mutex};

/// Error returned by [`Sender::send`] when every receiver is gone;
/// carries the unsent message back to the caller.
#[derive(Debug, PartialEq, Eq)]
pub struct SendError<T>(pub T);

/// Error returned by [`Sender::try_send`].
#[derive(Debug, PartialEq, Eq)]
pub enum TrySendError<T> {
    /// The queue is at capacity; the message is handed back.
    Full(T),
    /// Every receiver is gone; the message is handed back.
    Disconnected(T),
}

/// Error returned by [`Receiver::recv`] when the channel is empty and
/// every sender is gone.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RecvError;

/// Error returned by [`Receiver::try_recv`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TryRecvError {
    /// The queue is currently empty (senders still connected).
    Empty,
    /// The queue is empty and every sender is gone.
    Disconnected,
}

impl fmt::Display for RecvError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "receiving on an empty and disconnected channel")
    }
}

impl std::error::Error for RecvError {}

struct Inner<T> {
    queue: VecDeque<T>,
    capacity: Option<usize>,
    senders: usize,
    receivers: usize,
}

struct Shared<T> {
    inner: Mutex<Inner<T>>,
    not_empty: Condvar,
    not_full: Condvar,
}

/// The sending half of a channel (cloneable).
pub struct Sender<T> {
    shared: Arc<Shared<T>>,
}

/// The receiving half of a channel (cloneable — consumers compete for
/// messages).
pub struct Receiver<T> {
    shared: Arc<Shared<T>>,
}

/// Creates a channel holding at most `capacity` in-flight messages.
///
/// # Panics
/// Panics when `capacity` is zero (rendezvous channels are not
/// implemented in this stand-in).
pub fn bounded<T>(capacity: usize) -> (Sender<T>, Receiver<T>) {
    assert!(capacity > 0, "bounded(0) rendezvous channels unsupported");
    make(Some(capacity))
}

/// Creates a channel with no capacity bound.
pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
    make(None)
}

fn make<T>(capacity: Option<usize>) -> (Sender<T>, Receiver<T>) {
    let shared = Arc::new(Shared {
        inner: Mutex::new(Inner {
            queue: VecDeque::new(),
            capacity,
            senders: 1,
            receivers: 1,
        }),
        not_empty: Condvar::new(),
        not_full: Condvar::new(),
    });
    (
        Sender {
            shared: Arc::clone(&shared),
        },
        Receiver { shared },
    )
}

impl<T> Sender<T> {
    /// Enqueues a message, blocking while the queue is at capacity.
    /// Fails (returning the message) once every receiver is dropped.
    pub fn send(&self, msg: T) -> Result<(), SendError<T>> {
        let mut inner = self.shared.inner.lock().expect("channel poisoned");
        loop {
            if inner.receivers == 0 {
                return Err(SendError(msg));
            }
            let full = inner
                .capacity
                .is_some_and(|capacity| inner.queue.len() >= capacity);
            if !full {
                inner.queue.push_back(msg);
                drop(inner);
                self.shared.not_empty.notify_one();
                return Ok(());
            }
            inner = self.shared.not_full.wait(inner).expect("channel poisoned");
        }
    }

    /// Enqueues without blocking; fails with [`TrySendError::Full`]
    /// at capacity.
    pub fn try_send(&self, msg: T) -> Result<(), TrySendError<T>> {
        let mut inner = self.shared.inner.lock().expect("channel poisoned");
        if inner.receivers == 0 {
            return Err(TrySendError::Disconnected(msg));
        }
        let full = inner
            .capacity
            .is_some_and(|capacity| inner.queue.len() >= capacity);
        if full {
            return Err(TrySendError::Full(msg));
        }
        inner.queue.push_back(msg);
        drop(inner);
        self.shared.not_empty.notify_one();
        Ok(())
    }

    /// Number of messages currently queued.
    pub fn len(&self) -> usize {
        self.shared
            .inner
            .lock()
            .expect("channel poisoned")
            .queue
            .len()
    }

    /// Whether the queue is currently empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The channel's capacity (`None` for unbounded).
    pub fn capacity(&self) -> Option<usize> {
        self.shared.inner.lock().expect("channel poisoned").capacity
    }
}

impl<T> Receiver<T> {
    /// Dequeues a message, blocking while the queue is empty. Fails
    /// once the queue is drained and every sender is dropped.
    pub fn recv(&self) -> Result<T, RecvError> {
        let mut inner = self.shared.inner.lock().expect("channel poisoned");
        loop {
            if let Some(msg) = inner.queue.pop_front() {
                drop(inner);
                self.shared.not_full.notify_one();
                return Ok(msg);
            }
            if inner.senders == 0 {
                return Err(RecvError);
            }
            inner = self.shared.not_empty.wait(inner).expect("channel poisoned");
        }
    }

    /// Dequeues without blocking.
    pub fn try_recv(&self) -> Result<T, TryRecvError> {
        let mut inner = self.shared.inner.lock().expect("channel poisoned");
        match inner.queue.pop_front() {
            Some(msg) => {
                drop(inner);
                self.shared.not_full.notify_one();
                Ok(msg)
            }
            None if inner.senders == 0 => Err(TryRecvError::Disconnected),
            None => Err(TryRecvError::Empty),
        }
    }

    /// Number of messages currently queued.
    pub fn len(&self) -> usize {
        self.shared
            .inner
            .lock()
            .expect("channel poisoned")
            .queue
            .len()
    }

    /// Whether the queue is currently empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl<T> Clone for Sender<T> {
    fn clone(&self) -> Sender<T> {
        self.shared.inner.lock().expect("channel poisoned").senders += 1;
        Sender {
            shared: Arc::clone(&self.shared),
        }
    }
}

impl<T> Clone for Receiver<T> {
    fn clone(&self) -> Receiver<T> {
        self.shared
            .inner
            .lock()
            .expect("channel poisoned")
            .receivers += 1;
        Receiver {
            shared: Arc::clone(&self.shared),
        }
    }
}

impl<T> Drop for Sender<T> {
    fn drop(&mut self) {
        let remaining = {
            let mut inner = self.shared.inner.lock().expect("channel poisoned");
            inner.senders -= 1;
            inner.senders
        };
        if remaining == 0 {
            // Wake blocked receivers so they observe the disconnect.
            self.shared.not_empty.notify_all();
        }
    }
}

impl<T> Drop for Receiver<T> {
    fn drop(&mut self) {
        let remaining = {
            let mut inner = self.shared.inner.lock().expect("channel poisoned");
            inner.receivers -= 1;
            inner.receivers
        };
        if remaining == 0 {
            // Wake blocked senders so they observe the disconnect.
            self.shared.not_full.notify_all();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::thread;
    use std::time::Duration;

    #[test]
    fn bounded_send_recv_in_order() {
        let (tx, rx) = bounded(4);
        for i in 0..4 {
            tx.send(i).expect("send");
        }
        assert_eq!(tx.len(), 4);
        for i in 0..4 {
            assert_eq!(rx.recv(), Ok(i));
        }
        assert!(rx.is_empty());
    }

    #[test]
    fn try_send_reports_full_at_capacity() {
        let (tx, rx) = bounded(2);
        tx.try_send(1).expect("first");
        tx.try_send(2).expect("second");
        assert_eq!(tx.try_send(3), Err(TrySendError::Full(3)));
        assert_eq!(rx.recv(), Ok(1));
        tx.try_send(3).expect("after drain");
    }

    #[test]
    fn receiver_drains_after_senders_drop() {
        let (tx, rx) = bounded(8);
        tx.send("a").expect("send");
        tx.send("b").expect("send");
        drop(tx);
        assert_eq!(rx.recv(), Ok("a"));
        assert_eq!(rx.recv(), Ok("b"));
        assert_eq!(rx.recv(), Err(RecvError));
    }

    #[test]
    fn send_fails_once_receivers_gone() {
        let (tx, rx) = bounded::<u32>(1);
        drop(rx);
        assert_eq!(tx.send(7), Err(SendError(7)));
        assert!(matches!(tx.try_send(8), Err(TrySendError::Disconnected(8))));
    }

    #[test]
    fn blocked_sender_wakes_on_recv() {
        let (tx, rx) = bounded(1);
        tx.send(0u64).expect("fill");
        let producer = thread::spawn(move || tx.send(1).expect("unblocked send"));
        thread::sleep(Duration::from_millis(20));
        assert_eq!(rx.recv(), Ok(0));
        producer.join().expect("producer");
        assert_eq!(rx.recv(), Ok(1));
    }

    #[test]
    fn mpmc_delivers_every_message_exactly_once() {
        let (tx, rx) = bounded(16);
        let mut producers = Vec::new();
        for p in 0..4u64 {
            let tx = tx.clone();
            producers.push(thread::spawn(move || {
                for i in 0..250u64 {
                    tx.send(p * 1000 + i).expect("send");
                }
            }));
        }
        drop(tx);
        let mut consumers = Vec::new();
        for _ in 0..3 {
            let rx = rx.clone();
            consumers.push(thread::spawn(move || {
                let mut got = Vec::new();
                while let Ok(v) = rx.recv() {
                    got.push(v);
                }
                got
            }));
        }
        for p in producers {
            p.join().expect("producer");
        }
        drop(rx);
        let mut all: Vec<u64> = consumers
            .into_iter()
            .flat_map(|c| c.join().expect("consumer"))
            .collect();
        all.sort_unstable();
        let expect: Vec<u64> = (0..4u64)
            .flat_map(|p| (0..250u64).map(move |i| p * 1000 + i))
            .collect();
        assert_eq!(all, expect);
    }
}
