//! Offline stand-in for `bytes`: [`Bytes`] is a cheaply-cloneable,
//! immutable byte buffer (an `Arc<[u8]>` under the hood). Only the
//! constructors and deref behaviour this workspace could need are
//! provided.

use std::ops::Deref;
use std::sync::Arc;

/// An immutable, reference-counted byte buffer.
#[derive(Debug, Clone, Default, PartialEq, Eq, Hash)]
pub struct Bytes {
    data: Arc<[u8]>,
}

impl Bytes {
    /// An empty buffer.
    pub fn new() -> Bytes {
        Bytes::default()
    }

    /// Copies a slice into a new buffer.
    pub fn copy_from_slice(data: &[u8]) -> Bytes {
        Bytes { data: data.into() }
    }

    /// Buffer length in bytes.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.data
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        &self.data
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Bytes {
        Bytes { data: v.into() }
    }
}

impl From<&[u8]> for Bytes {
    fn from(v: &[u8]) -> Bytes {
        Bytes::copy_from_slice(v)
    }
}

impl From<&str> for Bytes {
    fn from(v: &str) -> Bytes {
        Bytes::copy_from_slice(v.as_bytes())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clone_shares_storage() {
        let a = Bytes::from("hello".as_bytes().to_vec());
        let b = a.clone();
        assert_eq!(&a[..], b"hello");
        assert_eq!(a, b);
        assert_eq!(a.len(), 5);
        assert!(!a.is_empty());
    }
}
