//! Offline stand-in for `serde_derive`.
//!
//! This build environment has no access to crates.io, so the real
//! proc-macro crate cannot be fetched. The sibling `serde` stub
//! blanket-implements `Serialize`/`Deserialize` for every type, which
//! means the derives only need to *resolve* — they expand to nothing.

use proc_macro::TokenStream;

/// No-op `#[derive(Serialize)]`; accepts and ignores `#[serde(...)]`
/// helper attributes.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// No-op `#[derive(Deserialize)]`; accepts and ignores `#[serde(...)]`
/// helper attributes.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
