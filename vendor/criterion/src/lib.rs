//! Offline stand-in for `criterion`.
//!
//! Implements the registration surface the workspace's `[[bench]]`
//! targets use (`Criterion`, `benchmark_group`, `bench_with_input`,
//! `BenchmarkId`, `criterion_group!`, `criterion_main!`) with a plain
//! wall-clock runner instead of statistical sampling. When the binary
//! is invoked by `cargo bench` (cargo passes `--bench`), each
//! benchmark runs `sample_size` timed batches and prints min/mean/max
//! per iteration; under `cargo test` each benchmark body runs once as
//! a smoke test so the target stays cheap in the tier-1 gate.

use std::fmt;
use std::time::{Duration, Instant};

/// Iterations per timed batch; keeps per-sample overhead measurable
/// without statistical machinery.
const BATCH_ITERS: u64 = 16;

/// True when cargo invoked this binary for measurement (`cargo bench`
/// passes `--bench`); otherwise run each body once as a smoke test.
fn measuring() -> bool {
    std::env::args().any(|a| a == "--bench")
}

/// Times one benchmark body.
pub struct Bencher {
    samples: Vec<Duration>,
    iters_per_sample: u64,
    sample_count: usize,
}

impl Bencher {
    /// Runs `f` repeatedly and records per-iteration wall time.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        for _ in 0..self.sample_count {
            let start = Instant::now();
            for _ in 0..self.iters_per_sample {
                std::hint::black_box(f());
            }
            self.samples
                .push(start.elapsed() / self.iters_per_sample as u32);
        }
    }
}

/// A benchmark identifier, rendered as `function/parameter`.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// Identifier with a function name and a parameter value.
    pub fn new<F: fmt::Display, P: fmt::Display>(function: F, parameter: P) -> BenchmarkId {
        BenchmarkId {
            id: format!("{function}/{parameter}"),
        }
    }

    /// Identifier from a parameter value alone.
    pub fn from_parameter<P: fmt::Display>(parameter: P) -> BenchmarkId {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.id)
    }
}

/// The benchmark runner handed to `criterion_group!` targets.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Criterion {
        Criterion { sample_size: 100 }
    }
}

impl Criterion {
    /// Sets how many timed batches each benchmark records.
    pub fn sample_size(mut self, n: usize) -> Criterion {
        assert!(n > 0, "sample size must be nonzero");
        self.sample_size = n;
        self
    }

    /// Runs a standalone benchmark.
    pub fn bench_function<F>(&mut self, name: &str, f: F) -> &mut Criterion
    where
        F: FnMut(&mut Bencher),
    {
        run_one(name, self.sample_size, f);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.to_string(),
        }
    }
}

/// A group of related benchmarks sharing a name prefix.
pub struct BenchmarkGroup<'c> {
    criterion: &'c mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Sets how many timed batches each benchmark in this group records.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n > 0, "sample size must be nonzero");
        self.criterion.sample_size = n;
        self
    }

    /// Runs a benchmark inside this group.
    pub fn bench_function<I: fmt::Display, F>(&mut self, id: I, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let label = format!("{}/{}", self.name, id);
        run_one(&label, self.criterion.sample_size, f);
        self
    }

    /// Runs a benchmark parameterised by `input`.
    pub fn bench_with_input<I, D: fmt::Display, F>(
        &mut self,
        id: D,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let label = format!("{}/{}", self.name, id);
        run_one(&label, self.criterion.sample_size, |b| f(b, input));
        self
    }

    /// Ends the group (reporting is immediate, so this is a marker).
    pub fn finish(self) {}
}

fn run_one<F: FnMut(&mut Bencher)>(label: &str, sample_size: usize, mut f: F) {
    let measure = measuring();
    let mut bencher = Bencher {
        samples: Vec::new(),
        iters_per_sample: if measure { BATCH_ITERS } else { 1 },
        sample_count: if measure { sample_size } else { 1 },
    };
    f(&mut bencher);
    if !measure {
        println!("{label}: ok (smoke)");
        return;
    }
    if bencher.samples.is_empty() {
        println!("{label}: no samples recorded");
        return;
    }
    let min = bencher.samples.iter().min().unwrap();
    let max = bencher.samples.iter().max().unwrap();
    let total: Duration = bencher.samples.iter().sum();
    let mean = total / bencher.samples.len() as u32;
    println!(
        "{label}: min {min:?}  mean {mean:?}  max {max:?}  ({} samples)",
        bencher.samples.len()
    );
}

/// Declares a benchmark group function, mirroring the real macro's two
/// accepted forms.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group! {
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        }
    };
}

/// Declares the benchmark binary's `main`, running each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_mode_runs_once() {
        // Test binaries are not passed --bench, so bodies run once.
        let mut calls = 0;
        Criterion::default()
            .sample_size(50)
            .bench_function("counting", |b| b.iter(|| calls += 1));
        assert_eq!(calls, 1);
    }

    #[test]
    fn ids_render() {
        assert_eq!(BenchmarkId::new("f", "p").to_string(), "f/p");
        assert_eq!(BenchmarkId::from_parameter(42).to_string(), "42");
    }
}
