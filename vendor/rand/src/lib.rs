//! Offline stand-in for `rand` 0.8.
//!
//! Implements the slice of the rand API this workspace uses —
//! [`RngCore`], [`SeedableRng`], [`Rng::gen_range`]/[`Rng::gen_bool`],
//! [`seq::SliceRandom::shuffle`] and [`seq::index::sample`] — with the
//! same signatures, so code written against real rand compiles and
//! behaves sensibly (deterministic given a seeded generator). Stream
//! values differ from the real crate; everything in this workspace
//! treats seeded randomness as an arbitrary-but-fixed choice, so only
//! determinism matters.

/// Low-level generator interface.
pub trait RngCore {
    /// Next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let bytes = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&bytes[..rem.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

/// Seedable construction.
pub trait SeedableRng: Sized {
    /// The raw seed type (a byte array).
    type Seed: Sized + Default + AsMut<[u8]>;

    /// Builds the generator from a full seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Builds the generator from a `u64`, expanding it with SplitMix64
    /// (as real rand does).
    fn seed_from_u64(mut state: u64) -> Self {
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(8) {
            // SplitMix64 step.
            state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^= z >> 31;
            let bytes = z.to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
        Self::from_seed(seed)
    }
}

/// High-level convenience methods (blanket-implemented for every
/// [`RngCore`]).
pub trait Rng: RngCore {
    /// Uniform sample from a range (`low..high` or `low..=high`).
    ///
    /// # Panics
    /// Panics when the range is empty.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: distributions::uniform::SampleRange<T>,
    {
        range.sample_single(self)
    }

    /// Bernoulli sample: `true` with probability `p`.
    ///
    /// # Panics
    /// Panics when `p` is not in `[0, 1]`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool p out of range: {p}");
        unit_f64(self.next_u64()) < p
    }

    /// Uniform `f64` in `[0, 1)`.
    fn gen(&mut self) -> f64 {
        unit_f64(self.next_u64())
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Maps 64 random bits to a uniform `f64` in `[0, 1)`.
fn unit_f64(bits: u64) -> f64 {
    (bits >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Uniform range distributions.
pub mod distributions {
    /// Uniform sampling over ranges.
    pub mod uniform {
        use crate::RngCore;

        /// A type uniformly sampleable from a half-open or inclusive
        /// range.
        pub trait SampleUniform: Sized + Copy + PartialOrd {
            /// Uniform sample from `[low, high)`.
            fn sample_half_open<R: RngCore + ?Sized>(low: Self, high: Self, rng: &mut R) -> Self;
            /// Uniform sample from `[low, high]`.
            fn sample_inclusive<R: RngCore + ?Sized>(low: Self, high: Self, rng: &mut R) -> Self;
        }

        macro_rules! impl_int_uniform {
            ($($t:ty),*) => {$(
                impl SampleUniform for $t {
                    fn sample_half_open<R: RngCore + ?Sized>(low: Self, high: Self, rng: &mut R) -> Self {
                        assert!(low < high, "gen_range: empty range");
                        let span = (high as i128 - low as i128) as u128;
                        let offset = (rng.next_u64() as u128) % span;
                        (low as i128 + offset as i128) as $t
                    }
                    fn sample_inclusive<R: RngCore + ?Sized>(low: Self, high: Self, rng: &mut R) -> Self {
                        assert!(low <= high, "gen_range: empty range");
                        let span = (high as i128 - low as i128) as u128 + 1;
                        let offset = (rng.next_u64() as u128) % span;
                        (low as i128 + offset as i128) as $t
                    }
                }
            )*};
        }
        impl_int_uniform!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

        macro_rules! impl_float_uniform {
            ($($t:ty),*) => {$(
                impl SampleUniform for $t {
                    fn sample_half_open<R: RngCore + ?Sized>(low: Self, high: Self, rng: &mut R) -> Self {
                        assert!(low < high, "gen_range: empty range");
                        let unit = super::super::unit_f64(rng.next_u64()) as $t;
                        low + unit * (high - low)
                    }
                    fn sample_inclusive<R: RngCore + ?Sized>(low: Self, high: Self, rng: &mut R) -> Self {
                        assert!(low <= high, "gen_range: empty range");
                        let unit = super::super::unit_f64(rng.next_u64()) as $t;
                        low + unit * (high - low)
                    }
                }
            )*};
        }
        impl_float_uniform!(f32, f64);

        /// Range shapes accepted by [`crate::Rng::gen_range`].
        pub trait SampleRange<T> {
            /// Draws one sample.
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
        }

        impl<T: SampleUniform> SampleRange<T> for std::ops::Range<T> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
                T::sample_half_open(self.start, self.end, rng)
            }
        }

        impl<T: SampleUniform> SampleRange<T> for std::ops::RangeInclusive<T> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
                T::sample_inclusive(*self.start(), *self.end(), rng)
            }
        }
    }
}

/// Sequence-related helpers.
pub mod seq {
    use crate::{Rng, RngCore};

    /// Slice extensions (shuffle, choose).
    pub trait SliceRandom {
        /// Element type.
        type Item;

        /// Fisher–Yates shuffle in place.
        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R);

        /// Uniformly chosen element (`None` when empty).
        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }

        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[rng.gen_range(0..self.len())])
            }
        }
    }

    /// Index sampling without replacement.
    pub mod index {
        use super::*;

        /// Sampled indices (API parity with rand's `IndexVec`).
        #[derive(Debug, Clone)]
        pub struct IndexVec(Vec<usize>);

        impl IndexVec {
            /// The indices as a plain vector.
            pub fn into_vec(self) -> Vec<usize> {
                self.0
            }

            /// Number of sampled indices.
            pub fn len(&self) -> usize {
                self.0.len()
            }

            /// Whether the sample is empty.
            pub fn is_empty(&self) -> bool {
                self.0.is_empty()
            }
        }

        /// Samples `amount` distinct indices from `0..length` by
        /// partial Fisher–Yates.
        ///
        /// # Panics
        /// Panics when `amount > length`.
        pub fn sample<R: RngCore + ?Sized>(rng: &mut R, length: usize, amount: usize) -> IndexVec {
            assert!(amount <= length, "sample amount exceeds length");
            let mut pool: Vec<usize> = (0..length).collect();
            for i in 0..amount {
                let j = rng.gen_range(i..length);
                pool.swap(i, j);
            }
            pool.truncate(amount);
            IndexVec(pool)
        }
    }
}

/// Commonly imported items.
pub mod prelude {
    pub use crate::seq::SliceRandom;
    pub use crate::{Rng, RngCore, SeedableRng};
}

#[cfg(test)]
mod tests {
    use super::seq::SliceRandom;
    use super::*;

    struct Lcg(u64);
    impl RngCore for Lcg {
        fn next_u64(&mut self) -> u64 {
            self.0 = self
                .0
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            self.0
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = Lcg(1);
        for _ in 0..1000 {
            let v = rng.gen_range(3..10);
            assert!((3..10).contains(&v));
            let u: usize = rng.gen_range(0..7);
            assert!(u < 7);
            let f = rng.gen_range(-2.0f64..2.0);
            assert!((-2.0..2.0).contains(&f));
            let i = rng.gen_range(5..=5);
            assert_eq!(i, 5);
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = Lcg(7);
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = Lcg(42);
        let mut v: Vec<usize> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, (0..50).collect::<Vec<_>>(), "shuffle left input sorted");
    }

    #[test]
    fn index_sample_is_distinct_and_bounded() {
        let mut rng = Lcg(9);
        let idx = seq::index::sample(&mut rng, 100, 30).into_vec();
        assert_eq!(idx.len(), 30);
        let set: std::collections::HashSet<_> = idx.iter().collect();
        assert_eq!(set.len(), 30);
        assert!(idx.iter().all(|&i| i < 100));
    }
}
