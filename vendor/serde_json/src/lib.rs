//! Offline stand-in for `serde_json`.
//!
//! Implements a self-contained JSON document model ([`Value`]), a
//! recursive-descent parser ([`from_str`]) and a writer, without the
//! serde data-model machinery (the derives in this workspace are
//! no-ops). The telemetry integration tests use this parser to verify
//! that exported reports are well-formed JSON.

use std::collections::BTreeMap;
use std::fmt;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any JSON number (kept as `f64`).
    Number(f64),
    /// A string.
    String(String),
    /// An array.
    Array(Vec<Value>),
    /// An object (keys sorted).
    Object(BTreeMap<String, Value>),
}

impl Value {
    /// Member lookup on objects (`None` elsewhere).
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(m) => m.get(key),
            _ => None,
        }
    }

    /// The value as an `f64`, when it is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Number(n) => Some(*n),
            _ => None,
        }
    }

    /// The value as a `u64`, when it is a non-negative integral number.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Number(n) if *n >= 0.0 && n.fract() == 0.0 => Some(*n as u64),
            _ => None,
        }
    }

    /// Whether the value is `null`.
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// The value as a string slice.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    /// The value as an array.
    pub fn as_array(&self) -> Option<&Vec<Value>> {
        match self {
            Value::Array(a) => Some(a),
            _ => None,
        }
    }

    /// The value as an object.
    pub fn as_object(&self) -> Option<&BTreeMap<String, Value>> {
        match self {
            Value::Object(m) => Some(m),
            _ => None,
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Null => f.write_str("null"),
            Value::Bool(b) => write!(f, "{b}"),
            Value::Number(n) => {
                if n.fract() == 0.0 && n.abs() < 1e15 {
                    write!(f, "{}", *n as i64)
                } else {
                    write!(f, "{n}")
                }
            }
            Value::String(s) => write!(f, "{}", escape(s)),
            Value::Array(items) => {
                f.write_str("[")?;
                for (i, v) in items.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    write!(f, "{v}")?;
                }
                f.write_str("]")
            }
            Value::Object(map) => {
                f.write_str("{")?;
                for (i, (k, v)) in map.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    write!(f, "{}:{v}", escape(k))?;
                }
                f.write_str("}")
            }
        }
    }
}

/// Escapes a string into a quoted JSON literal.
fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// A parse error with byte position.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error {
    /// What went wrong.
    pub message: String,
    /// Byte offset the parser stopped at.
    pub position: usize,
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "JSON error at byte {}: {}", self.position, self.message)
    }
}

impl std::error::Error for Error {}

/// Result alias matching serde_json's.
pub type Result<T> = std::result::Result<T, Error>;

/// Parses a JSON document.
pub fn from_str(s: &str) -> Result<Value> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters"));
    }
    Ok(v)
}

/// Renders a value as compact JSON.
pub fn to_string(v: &Value) -> String {
    v.to_string()
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, message: &str) -> Error {
        Error {
            message: message.to_string(),
            position: self.pos,
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<()> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected '{}'", b as char)))
        }
    }

    fn literal(&mut self, lit: &str, v: Value) -> Result<Value> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(v)
        } else {
            Err(self.err("invalid literal"))
        }
    }

    fn value(&mut self) -> Result<Value> {
        match self.peek() {
            Some(b'n') => self.literal("null", Value::Null),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'"') => Ok(Value::String(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            _ => Err(self.err("expected a value")),
        }
    }

    fn array(&mut self) -> Result<Value> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn object(&mut self) -> Result<Value> {
        self.expect(b'{')?;
        let mut map = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(map));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let val = self.value()?;
            map.insert(key, val);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(map));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }

    fn string(&mut self) -> Result<String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b't') => out.push('\t'),
                        Some(b'r') => out.push('\r'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            if self.pos + 5 > self.bytes.len() {
                                return Err(self.err("truncated \\u escape"));
                            }
                            let hex = std::str::from_utf8(&self.bytes[self.pos + 1..self.pos + 5])
                                .map_err(|_| self.err("bad \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.err("bad \\u escape"))?;
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                            self.pos += 4;
                        }
                        _ => return Err(self.err("bad escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar.
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| self.err("invalid UTF-8"))?;
                    let c = rest.chars().next().expect("non-empty");
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Value> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            self.pos += 1;
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("invalid number"))?;
        text.parse::<f64>()
            .map(Value::Number)
            .map_err(|_| self.err("invalid number"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_nested_document() {
        let v = from_str(r#"{"a": [1, 2.5, -3e2], "b": {"c": true, "d": null}, "e": "x\ny"}"#)
            .expect("parses");
        assert_eq!(
            v.get("a").and_then(|a| a.as_array()).map(|a| a.len()),
            Some(3)
        );
        assert_eq!(
            v.get("b").and_then(|b| b.get("c")),
            Some(&Value::Bool(true))
        );
        assert_eq!(v.get("e").and_then(|e| e.as_str()), Some("x\ny"));
    }

    #[test]
    fn roundtrips() {
        let src = r#"{"hist":{"count":3,"p50":1.5},"name":"detector.latency_ns"}"#;
        let v = from_str(src).expect("parses");
        let v2 = from_str(&to_string(&v)).expect("reparses");
        assert_eq!(v, v2);
    }

    #[test]
    fn rejects_garbage() {
        assert!(from_str("{").is_err());
        assert!(from_str("[1,]").is_err());
        assert!(from_str("1 2").is_err());
        assert!(from_str("").is_err());
    }
}
