//! String strategies described by a regex subset.
//!
//! A `&'static str` used where a strategy is expected is interpreted
//! as a generator for the language of that pattern, mirroring the real
//! crate. The supported subset covers the patterns appearing in this
//! workspace: literals, `.`, escapes (`\d`, `\s`, `\w`, `\\`, `\.`),
//! character classes with ranges (`[ -~]`, `[abc01 .x]`), groups with
//! alternation, and the quantifiers `?`, `*`, `+`, `{m}`, `{m,n}`.
//! Unbounded quantifiers are capped at 8 repetitions.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

const UNBOUNDED_CAP: usize = 8;

#[derive(Debug, Clone)]
enum Node {
    /// One of the listed branches, uniformly.
    Alt(Vec<Node>),
    /// All parts in order.
    Seq(Vec<Node>),
    /// A repeated node, `min..=max` times.
    Repeat(Box<Node>, usize, usize),
    /// One character drawn from the listed choices.
    Class(Vec<char>),
    /// A fixed character.
    Lit(char),
}

struct Parser<'p> {
    chars: Vec<char>,
    pos: usize,
    pattern: &'p str,
}

impl<'p> Parser<'p> {
    fn new(pattern: &'p str) -> Parser<'p> {
        Parser {
            chars: pattern.chars().collect(),
            pos: 0,
            pattern,
        }
    }

    fn peek(&self) -> Option<char> {
        self.chars.get(self.pos).copied()
    }

    fn bump(&mut self) -> char {
        let c = self.chars[self.pos];
        self.pos += 1;
        c
    }

    fn fail(&self, what: &str) -> ! {
        panic!(
            "unsupported regex pattern {:?} at offset {}: {}",
            self.pattern, self.pos, what
        );
    }

    fn parse_alt(&mut self) -> Node {
        let mut branches = vec![self.parse_seq()];
        while self.peek() == Some('|') {
            self.bump();
            branches.push(self.parse_seq());
        }
        if branches.len() == 1 {
            branches.pop().unwrap()
        } else {
            Node::Alt(branches)
        }
    }

    fn parse_seq(&mut self) -> Node {
        let mut parts = Vec::new();
        while let Some(c) = self.peek() {
            if c == '|' || c == ')' {
                break;
            }
            parts.push(self.parse_repeat());
        }
        if parts.len() == 1 {
            parts.pop().unwrap()
        } else {
            Node::Seq(parts)
        }
    }

    fn parse_repeat(&mut self) -> Node {
        let atom = self.parse_atom();
        match self.peek() {
            Some('?') => {
                self.bump();
                Node::Repeat(Box::new(atom), 0, 1)
            }
            Some('*') => {
                self.bump();
                Node::Repeat(Box::new(atom), 0, UNBOUNDED_CAP)
            }
            Some('+') => {
                self.bump();
                Node::Repeat(Box::new(atom), 1, UNBOUNDED_CAP)
            }
            Some('{') => {
                self.bump();
                let min = self.parse_number();
                let max = match self.peek() {
                    Some(',') => {
                        self.bump();
                        if self.peek() == Some('}') {
                            min + UNBOUNDED_CAP
                        } else {
                            self.parse_number()
                        }
                    }
                    _ => min,
                };
                if self.peek() != Some('}') {
                    self.fail("expected '}' closing a repetition count");
                }
                self.bump();
                if max < min {
                    self.fail("repetition maximum below minimum");
                }
                Node::Repeat(Box::new(atom), min, max)
            }
            _ => atom,
        }
    }

    fn parse_number(&mut self) -> usize {
        let start = self.pos;
        while self.peek().is_some_and(|c| c.is_ascii_digit()) {
            self.bump();
        }
        if self.pos == start {
            self.fail("expected a number");
        }
        self.chars[start..self.pos]
            .iter()
            .collect::<String>()
            .parse()
            .unwrap()
    }

    fn parse_atom(&mut self) -> Node {
        match self.peek() {
            Some('(') => {
                self.bump();
                let inner = self.parse_alt();
                if self.peek() != Some(')') {
                    self.fail("expected ')' closing a group");
                }
                self.bump();
                inner
            }
            Some('[') => {
                self.bump();
                Node::Class(self.parse_class())
            }
            Some('.') => {
                self.bump();
                // Any printable ASCII character, like the real crate's
                // default for `.` restricted to one byte.
                Node::Class((' '..='~').collect())
            }
            Some('\\') => {
                self.bump();
                self.parse_escape()
            }
            Some(c) if !"?*+{}|)".contains(c) => {
                self.bump();
                Node::Lit(c)
            }
            Some(_) => self.fail("unexpected metacharacter"),
            None => self.fail("unexpected end of pattern"),
        }
    }

    fn parse_escape(&mut self) -> Node {
        match self.peek() {
            Some('d') => {
                self.bump();
                Node::Class(('0'..='9').collect())
            }
            Some('s') => {
                self.bump();
                Node::Class(vec![' ', '\t', '\n'])
            }
            Some('w') => {
                self.bump();
                let mut set: Vec<char> = ('a'..='z').collect();
                set.extend('A'..='Z');
                set.extend('0'..='9');
                set.push('_');
                Node::Class(set)
            }
            Some(c) => {
                self.bump();
                Node::Lit(c)
            }
            None => self.fail("dangling backslash"),
        }
    }

    fn parse_class(&mut self) -> Vec<char> {
        let mut set = Vec::new();
        loop {
            match self.peek() {
                None => self.fail("unterminated character class"),
                Some(']') if !set.is_empty() => {
                    self.bump();
                    return set;
                }
                Some('\\') => {
                    self.bump();
                    match self.parse_escape() {
                        Node::Class(cs) => set.extend(cs),
                        Node::Lit(c) => set.push(c),
                        _ => unreachable!(),
                    }
                }
                Some(lo) => {
                    self.bump();
                    // A '-' forms a range unless it is the last
                    // character before ']'.
                    if self.peek() == Some('-') && self.chars.get(self.pos + 1) != Some(&']') {
                        self.bump();
                        let hi = self.bump();
                        if hi < lo {
                            self.fail("reversed character range");
                        }
                        set.extend(lo..=hi);
                    } else {
                        set.push(lo);
                    }
                }
            }
        }
    }
}

fn generate_into(node: &Node, rng: &mut TestRng, out: &mut String) {
    match node {
        Node::Alt(branches) => {
            let pick = rng.below(branches.len());
            generate_into(&branches[pick], rng, out);
        }
        Node::Seq(parts) => {
            for part in parts {
                generate_into(part, rng, out);
            }
        }
        Node::Repeat(inner, min, max) => {
            let n = min + rng.below(max - min + 1);
            for _ in 0..n {
                generate_into(inner, rng, out);
            }
        }
        Node::Class(choices) => out.push(choices[rng.below(choices.len())]),
        Node::Lit(c) => out.push(*c),
    }
}

/// A compiled string-from-regex strategy.
#[derive(Debug, Clone)]
pub struct StringRegex {
    root: Node,
}

impl StringRegex {
    /// Compiles `pattern`; panics on constructs outside the supported
    /// subset (acceptable for a test-only crate).
    pub fn new(pattern: &str) -> StringRegex {
        let mut parser = Parser::new(pattern);
        let root = parser.parse_alt();
        if parser.pos != parser.chars.len() {
            parser.fail("trailing input after pattern");
        }
        StringRegex { root }
    }
}

impl Strategy for StringRegex {
    type Value = String;
    fn generate(&self, rng: &mut TestRng) -> String {
        let mut out = String::new();
        generate_into(&self.root, rng, &mut out);
        out
    }
}

/// Compiles a pattern into a strategy (mirrors
/// `proptest::string::string_regex`, minus the error case).
pub fn string_regex(pattern: &str) -> Result<StringRegex, std::convert::Infallible> {
    Ok(StringRegex::new(pattern))
}

/// Pattern literals act as strategies, like in the real crate.
impl Strategy for &'static str {
    type Value = String;
    fn generate(&self, rng: &mut TestRng) -> String {
        StringRegex::new(self).generate(rng)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_runner::TestRng;

    #[test]
    fn printable_ascii_class() {
        let mut rng = TestRng::deterministic("string::printable");
        let strat = StringRegex::new("[ -~]{0,80}");
        let mut max_len = 0;
        for _ in 0..200 {
            let s = strat.generate(&mut rng);
            assert!(s.len() <= 80);
            assert!(s.chars().all(|c| (' '..='~').contains(&c)), "{s:?}");
            max_len = max_len.max(s.len());
        }
        assert!(max_len > 40, "length distribution collapsed: {max_len}");
    }

    #[test]
    fn groups_alternation_and_escapes() {
        let mut rng = TestRng::deterministic("string::groups");
        let strat = StringRegex::new(r"[abc01]([abc01.]|\\d|\\s){0,8}");
        for _ in 0..200 {
            let s = strat.generate(&mut rng);
            assert!("abc01".contains(s.chars().next().unwrap()));
            // Tail consists of class chars or literal \d / \s pairs.
            let tail: String = s.chars().skip(1).collect();
            let mut it = tail.chars().peekable();
            while let Some(c) = it.next() {
                if c == '\\' {
                    assert!(matches!(it.next(), Some('d') | Some('s')), "{s:?}");
                } else {
                    assert!("abc01.".contains(c), "{s:?}");
                }
            }
        }
    }

    #[test]
    fn quantifiers() {
        let mut rng = TestRng::deterministic("string::quant");
        for _ in 0..100 {
            let s = StringRegex::new("a?b+c{2}(d|e){1,3}").generate(&mut rng);
            assert!(s.len() >= 4, "{s:?}");
            assert!(s.contains("cc"), "{s:?}");
        }
    }

    #[test]
    fn str_literals_are_strategies() {
        use crate::strategy::Strategy;
        let mut rng = TestRng::deterministic("string::lit");
        let s = Strategy::generate(&"[xy]{3}", &mut rng);
        assert_eq!(s.len(), 3);
        assert!(s.chars().all(|c| c == 'x' || c == 'y'));
    }
}
