//! The [`Strategy`] trait and the combinators this workspace uses.

use crate::test_runner::TestRng;
use std::ops::{Range, RangeInclusive};

/// A recipe for generating values of `Self::Value`.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Builds a second strategy from each generated value and draws
    /// from it.
    fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S: Strategy,
        F: Fn(Self::Value) -> S,
    {
        FlatMap { inner: self, f }
    }

    /// Type-erases the strategy.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Box::new(self))
    }
}

/// References to strategies are strategies.
impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (**self).generate(rng)
    }
}

/// Always produces a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// See [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
#[derive(Debug, Clone)]
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S, S2, F> Strategy for FlatMap<S, F>
where
    S: Strategy,
    S2: Strategy,
    F: Fn(S::Value) -> S2,
{
    type Value = S2::Value;
    fn generate(&self, rng: &mut TestRng) -> S2::Value {
        (self.f)(self.inner.generate(rng)).generate(rng)
    }
}

/// A type-erased strategy.
pub struct BoxedStrategy<T>(Box<dyn Strategy<Value = T>>);

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        self.0.generate(rng)
    }
}

macro_rules! impl_int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u128;
                let offset = (rng.next_u64() as u128) % span;
                (self.start as i128 + offset as i128) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start() <= self.end(), "empty range strategy");
                let span = (*self.end() as i128 - *self.start() as i128) as u128 + 1;
                let offset = (rng.next_u64() as u128) % span;
                (*self.start() as i128 + offset as i128) as $t
            }
        }
    )*};
}
impl_int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_float_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                self.start + (rng.unit_f64() as $t) * (self.end - self.start)
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                self.start() + (rng.unit_f64() as $t) * (self.end() - self.start())
            }
        }
    )*};
}
impl_float_range_strategy!(f32, f64);

macro_rules! impl_tuple_strategy {
    ($(($($name:ident/$idx:tt),+);)*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}
impl_tuple_strategy! {
    (A/0);
    (A/0, B/1);
    (A/0, B/1, C/2);
    (A/0, B/1, C/2, D/3);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_runner::TestRng;

    #[test]
    fn ranges_maps_and_tuples() {
        let mut rng = TestRng::deterministic("strategy::tests");
        for _ in 0..200 {
            let x = (3usize..9).generate(&mut rng);
            assert!((3..9).contains(&x));
            let f = (-2.0f64..2.0).generate(&mut rng);
            assert!((-2.0..2.0).contains(&f));
            let (a, b) = (0u8..4, 10i32..=12).generate(&mut rng);
            assert!(a < 4 && (10..=12).contains(&b));
            let doubled = (1usize..5).prop_map(|v| v * 2).generate(&mut rng);
            assert!(doubled % 2 == 0 && doubled < 10);
            let nested = (1usize..4)
                .prop_flat_map(|n| crate::collection::vec(0u8..10, n))
                .generate(&mut rng);
            assert!(!nested.is_empty() && nested.len() < 4);
        }
    }

    #[test]
    fn just_is_constant() {
        let mut rng = TestRng::deterministic("just");
        assert_eq!(Just(7u32).generate(&mut rng), 7);
    }
}
