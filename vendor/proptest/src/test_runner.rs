//! Configuration and the deterministic RNG driving generation.

/// Per-test configuration (only `cases` is honoured).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of generated cases per test.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> ProptestConfig {
        ProptestConfig { cases: 256 }
    }
}

impl ProptestConfig {
    /// Configuration running `cases` cases.
    pub fn with_cases(cases: u32) -> ProptestConfig {
        ProptestConfig { cases }
    }
}

/// Deterministic generator (xorshift* seeded from the test's path, so
/// every run of a given test replays the same cases).
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seeds from an arbitrary name (FNV-1a of the bytes).
    pub fn deterministic(name: &str) -> TestRng {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for &b in name.as_bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        TestRng {
            state: h | 1, // never zero
        }
    }

    /// Next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        // xorshift64*.
        let mut x = self.state;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.state = x;
        x.wrapping_mul(0x2545_f491_4f6c_dd1d)
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform `usize` in `[0, bound)` (`bound` must be nonzero).
    pub fn below(&mut self, bound: usize) -> usize {
        (self.next_u64() % bound as u64) as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_replay() {
        let mut a = TestRng::deterministic("x::y");
        let mut b = TestRng::deterministic("x::y");
        assert_eq!(
            (0..8).map(|_| a.next_u64()).collect::<Vec<_>>(),
            (0..8).map(|_| b.next_u64()).collect::<Vec<_>>()
        );
    }

    #[test]
    fn different_names_diverge() {
        let mut a = TestRng::deterministic("a");
        let mut b = TestRng::deterministic("b");
        assert_ne!(a.next_u64(), b.next_u64());
    }
}
