//! Collection strategies (`proptest::collection::vec`).

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use std::ops::{Range, RangeInclusive};

/// Length specifications accepted by [`vec`].
pub trait SizeSpec {
    /// Draws a length.
    fn pick(&self, rng: &mut TestRng) -> usize;
}

impl SizeSpec for usize {
    fn pick(&self, _rng: &mut TestRng) -> usize {
        *self
    }
}

impl SizeSpec for Range<usize> {
    fn pick(&self, rng: &mut TestRng) -> usize {
        assert!(self.start < self.end, "empty size range");
        self.start + rng.below(self.end - self.start)
    }
}

impl SizeSpec for RangeInclusive<usize> {
    fn pick(&self, rng: &mut TestRng) -> usize {
        self.start() + rng.below(self.end() - self.start() + 1)
    }
}

/// Strategy producing vectors of `element` values with a length drawn
/// from `size`.
pub fn vec<S: Strategy, Z: SizeSpec>(element: S, size: Z) -> VecStrategy<S, Z> {
    VecStrategy { element, size }
}

/// See [`vec`].
#[derive(Debug, Clone)]
pub struct VecStrategy<S, Z> {
    element: S,
    size: Z,
}

impl<S: Strategy, Z: SizeSpec> Strategy for VecStrategy<S, Z> {
    type Value = Vec<S::Value>;

    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let n = self.size.pick(rng);
        (0..n).map(|_| self.element.generate(rng)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::arbitrary::any;

    #[test]
    fn sizes_respected() {
        let mut rng = TestRng::deterministic("collection");
        for _ in 0..100 {
            let v = vec(any::<u8>(), 0..16).generate(&mut rng);
            assert!(v.len() < 16);
            let w = vec(0f64..1.0, 5usize).generate(&mut rng);
            assert_eq!(w.len(), 5);
            assert!(w.iter().all(|x| (0.0..1.0).contains(x)));
            let z = vec(any::<bool>(), 2..=3).generate(&mut rng);
            assert!(z.len() == 2 || z.len() == 3);
        }
    }
}
