//! Offline stand-in for `proptest`.
//!
//! A deterministic random-testing harness implementing the strategy
//! surface this workspace's tests use: numeric ranges, tuples,
//! `prop_map`/`prop_flat_map`, `collection::vec`, `any::<T>()`, and
//! string-from-regex strategies, driven by a `proptest!` macro with
//! optional `#![proptest_config(...)]`. Differences from the real
//! crate: no shrinking (a failing case panics with its inputs via the
//! test assertion message) and a fixed per-test seed (runs are fully
//! reproducible).

pub mod collection;
pub mod strategy;
pub mod string;
pub mod test_runner;

/// Arbitrary-value strategies (`any::<T>()`).
pub mod arbitrary {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Types with a canonical strategy.
    pub trait Arbitrary: Sized {
        /// The canonical strategy type.
        type Strategy: Strategy<Value = Self>;
        /// Builds the canonical strategy.
        fn arbitrary() -> Self::Strategy;
    }

    /// Strategy producing any value of a primitive type.
    #[derive(Debug, Clone, Copy)]
    pub struct AnyPrimitive<T>(std::marker::PhantomData<T>);

    macro_rules! impl_any_int {
        ($($t:ty),*) => {$(
            impl Strategy for AnyPrimitive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }
            impl Arbitrary for $t {
                type Strategy = AnyPrimitive<$t>;
                fn arbitrary() -> Self::Strategy {
                    AnyPrimitive(std::marker::PhantomData)
                }
            }
        )*};
    }
    impl_any_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Strategy for AnyPrimitive<bool> {
        type Value = bool;
        fn generate(&self, rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }
    impl Arbitrary for bool {
        type Strategy = AnyPrimitive<bool>;
        fn arbitrary() -> Self::Strategy {
            AnyPrimitive(std::marker::PhantomData)
        }
    }

    /// The canonical strategy for `T`.
    pub fn any<T: Arbitrary>() -> T::Strategy {
        T::arbitrary()
    }
}

/// The glob import the real crate recommends.
pub mod prelude {
    pub use crate::arbitrary::{any, Arbitrary};
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};
}

/// Proptest-style assertion (panics on failure; no shrinking).
#[macro_export]
macro_rules! prop_assert {
    ($($arg:tt)*) => { assert!($($arg)*) };
}

/// Proptest-style equality assertion.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($arg:tt)*) => { assert_eq!($($arg)*) };
}

/// Proptest-style inequality assertion.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($arg:tt)*) => { assert_ne!($($arg)*) };
}

/// Skips the rest of the current case when the assumption fails.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            continue;
        }
    };
}

/// Declares property tests:
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(64))] // optional
///     #[test]
///     fn holds(x in 0u32..10, v in proptest::collection::vec(any::<u8>(), 0..32)) {
///         prop_assert!(x < 10 && v.len() < 32);
///     }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl!{ [$cfg] $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl!{ [$crate::test_runner::ProptestConfig::default()] $($rest)* }
    };
}

/// Internal expansion helper for [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ([$cfg:expr]) => {};
    ([$cfg:expr]
     $(#[$meta:meta])*
     fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __config = $cfg;
            let mut __rng = $crate::test_runner::TestRng::deterministic(concat!(
                module_path!(),
                "::",
                stringify!($name)
            ));
            #[allow(clippy::redundant_closure_call)]
            for __case in 0..__config.cases {
                let _ = __case;
                $(let $arg = $crate::strategy::Strategy::generate(&($strat), &mut __rng);)+
                $body
            }
        }
        $crate::__proptest_impl!{ [$cfg] $($rest)* }
    };
}
