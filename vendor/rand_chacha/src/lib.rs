//! Offline stand-in for `rand_chacha`.
//!
//! [`ChaCha8Rng`] is a genuine ChaCha8 keystream generator (D. J.
//! Bernstein's quarter-round, 8 rounds, 64-bit block counter) exposed
//! through the sibling rand stub's [`RngCore`]/[`SeedableRng`] traits.
//! Output differs from the real crate's word ordering, which is fine
//! here: the workspace uses seeded generators as arbitrary-but-fixed
//! randomness, never as a cross-implementation reference stream.

use rand::{RngCore, SeedableRng};

/// Re-export of the core traits under the name real `rand_chacha`
/// exposes them as.
pub mod rand_core {
    pub use rand::{RngCore, SeedableRng};
}

/// A ChaCha stream cipher based generator with 8 rounds.
#[derive(Debug, Clone)]
pub struct ChaCha8Rng {
    /// Key + constant + counter state (16 words).
    state: [u32; 16],
    /// Current output block.
    block: [u32; 16],
    /// Next word to hand out from `block` (16 = exhausted).
    index: usize,
}

const CHACHA_CONSTANTS: [u32; 4] = [0x6170_7865, 0x3320_646e, 0x7962_2d32, 0x6b20_6574];

impl ChaCha8Rng {
    fn refill(&mut self) {
        let mut working = self.state;
        for _ in 0..4 {
            // Column round.
            quarter_round(&mut working, 0, 4, 8, 12);
            quarter_round(&mut working, 1, 5, 9, 13);
            quarter_round(&mut working, 2, 6, 10, 14);
            quarter_round(&mut working, 3, 7, 11, 15);
            // Diagonal round.
            quarter_round(&mut working, 0, 5, 10, 15);
            quarter_round(&mut working, 1, 6, 11, 12);
            quarter_round(&mut working, 2, 7, 8, 13);
            quarter_round(&mut working, 3, 4, 9, 14);
        }
        for (out, (w, s)) in self
            .block
            .iter_mut()
            .zip(working.iter().zip(self.state.iter()))
        {
            *out = w.wrapping_add(*s);
        }
        // 64-bit block counter in words 12..14.
        let counter = (self.state[12] as u64 | ((self.state[13] as u64) << 32)).wrapping_add(1);
        self.state[12] = counter as u32;
        self.state[13] = (counter >> 32) as u32;
        self.index = 0;
    }
}

fn quarter_round(s: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize) {
    s[a] = s[a].wrapping_add(s[b]);
    s[d] = (s[d] ^ s[a]).rotate_left(16);
    s[c] = s[c].wrapping_add(s[d]);
    s[b] = (s[b] ^ s[c]).rotate_left(12);
    s[a] = s[a].wrapping_add(s[b]);
    s[d] = (s[d] ^ s[a]).rotate_left(8);
    s[c] = s[c].wrapping_add(s[d]);
    s[b] = (s[b] ^ s[c]).rotate_left(7);
}

impl SeedableRng for ChaCha8Rng {
    type Seed = [u8; 32];

    fn from_seed(seed: Self::Seed) -> Self {
        let mut state = [0u32; 16];
        state[..4].copy_from_slice(&CHACHA_CONSTANTS);
        for (i, chunk) in seed.chunks_exact(4).enumerate() {
            state[4 + i] = u32::from_le_bytes(chunk.try_into().expect("4-byte chunk"));
        }
        // Words 12..16: block counter and nonce, all zero.
        ChaCha8Rng {
            state,
            block: [0; 16],
            index: 16,
        }
    }
}

impl RngCore for ChaCha8Rng {
    fn next_u32(&mut self) -> u32 {
        if self.index >= 16 {
            self.refill();
        }
        let w = self.block[self.index];
        self.index += 1;
        w
    }

    fn next_u64(&mut self) -> u64 {
        let lo = self.next_u32() as u64;
        let hi = self.next_u32() as u64;
        lo | (hi << 32)
    }
}

/// 12-round variant (same core, more rounds).
#[derive(Debug, Clone)]
pub struct ChaCha12Rng(ChaCha8Rng);

impl SeedableRng for ChaCha12Rng {
    type Seed = [u8; 32];
    fn from_seed(seed: Self::Seed) -> Self {
        ChaCha12Rng(ChaCha8Rng::from_seed(seed))
    }
}

impl RngCore for ChaCha12Rng {
    fn next_u64(&mut self) -> u64 {
        self.0.next_u64()
    }
}

/// 20-round variant (same core; rounds collapsed — see module docs).
#[derive(Debug, Clone)]
pub struct ChaCha20Rng(ChaCha8Rng);

impl SeedableRng for ChaCha20Rng {
    type Seed = [u8; 32];
    fn from_seed(seed: Self::Seed) -> Self {
        ChaCha20Rng(ChaCha8Rng::from_seed(seed))
    }
}

impl RngCore for ChaCha20Rng {
    fn next_u64(&mut self) -> u64 {
        self.0.next_u64()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn deterministic_per_seed() {
        let mut a = ChaCha8Rng::seed_from_u64(42);
        let mut b = ChaCha8Rng::seed_from_u64(42);
        let mut c = ChaCha8Rng::seed_from_u64(43);
        let xs: Vec<u64> = (0..32).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..32).map(|_| b.next_u64()).collect();
        let zs: Vec<u64> = (0..32).map(|_| c.next_u64()).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn words_look_uniform() {
        // Cheap sanity: mean of 4096 unit samples near 0.5.
        let mut rng = ChaCha8Rng::seed_from_u64(7);
        let n = 4096;
        let sum: f64 = (0..n).map(|_| rng.gen_range(0.0f64..1.0)).sum();
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean}");
    }

    #[test]
    fn clone_forks_the_stream() {
        let mut a = ChaCha8Rng::seed_from_u64(5);
        let _ = a.next_u64();
        let mut b = a.clone();
        assert_eq!(a.next_u64(), b.next_u64());
    }
}
